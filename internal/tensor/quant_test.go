package tensor

import (
	"math"
	"testing"
)

func refQuantDot(dst []int32, x, w []int8, in, out int) {
	for j := 0; j < out; j++ {
		s := int32(0)
		for i := 0; i < in; i++ {
			s += int32(x[i]) * int32(w[i*out+j])
		}
		dst[j] = s
	}
}

func TestQuantPanelSweepExact(t *testing.T) {
	dims := [][2]int{{6, 30}, {30, 48}, {48, 3}, {7, 5}, {64, 64}, {1, 1}, {5, 2}, {3, 9}, {13, 17}, {9, 8}, {2, 24}, {24, 1}}
	for _, d := range dims {
		in, out := d[0], d[1]
		w := make([]int8, in*out)
		x := make([]int8, in)
		for i := range w {
			w[i] = int8((i*37+11)%127 - 63)
		}
		for i := range x {
			x[i] = int8((i*91+3)%127 - 63)
		}
		p := PackQuantPanel(w, in, out)
		ux := make([]uint64, in)
		got := make([]int32, out)
		want := make([]int32, out)
		p.Sweep(got, x, ux)
		refQuantDot(want, x, w, in, out)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("%dx%d col %d: got %d want %d", in, out, j, got[j], want[j])
			}
		}
	}
}

// Sweeping with zeroed entries (the dropout mask) must stay exact: the
// input-sum correction is recomputed per sweep.
func TestQuantPanelSweepMasked(t *testing.T) {
	in, out := 30, 48
	w := make([]int8, in*out)
	x := make([]int8, in)
	for i := range w {
		w[i] = int8((i*53+7)%127 - 63)
	}
	for i := range x {
		x[i] = int8((i*29+5)%127 - 63)
	}
	for i := 0; i < in; i += 3 {
		x[i] = 0
	}
	p := PackQuantPanel(w, in, out)
	ux := make([]uint64, in)
	got := make([]int32, out)
	want := make([]int32, out)
	p.Sweep(got, x, ux)
	refQuantDot(want, x, w, in, out)
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("masked col %d: got %d want %d", j, got[j], want[j])
		}
	}
}

func TestPackQuantPanelDeterministic(t *testing.T) {
	in, out := 13, 17
	w := make([]int8, in*out)
	for i := range w {
		w[i] = int8((i*41+19)%127 - 63)
	}
	a := PackQuantPanel(w, in, out)
	b := PackQuantPanel(w, in, out)
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatalf("word %d differs", i)
		}
	}
	for j := range a.ColCorr {
		if a.ColCorr[j] != b.ColCorr[j] {
			t.Fatalf("colCorr %d differs", j)
		}
	}
}

// The fused integer epilogue must track 63*act(acc*scale+bias) to well
// under one step of the 1/63 grid (measured ~0.52 including the
// half-step requant rounding).
func TestQuantEpilogueError(t *testing.T) {
	lut := BuildQuantLUT(math.Tanh, -4, 4)
	scale, bias := 0.00013, 0.37
	aF, cF := QuantIndexCoeffs(scale, bias, -4, 4)
	qy := make([]int8, 1)
	acc := make([]int32, 1)
	maxe := 0.0
	for a := -40000; a <= 40000; a += 7 {
		acc[0] = int32(a)
		QuantEpilogue(qy, acc, []float64{aF}, []float64{cF}, lut)
		ref := QuantMax * math.Tanh(float64(a)*scale+bias)
		if e := math.Abs(float64(qy[0]) - ref); e > maxe {
			maxe = e
		}
	}
	if maxe > 0.75 {
		t.Fatalf("epilogue max err %.3f grid steps, want <= 0.75", maxe)
	}
}

func TestQuantizeVec(t *testing.T) {
	inv := float64(QuantMax) / 2.0 // envelope |x| <= 2
	x := []float64{0, 1, -1, 0.5, 1.99, -1.99, 0.02, -0.02}
	q := make([]int8, len(x))
	if clipped := QuantizeVec(q, x, inv); clipped {
		t.Fatal("in-envelope input reported clipped")
	}
	// Half-up rounding: 1*31.5 -> 32 but -1*31.5 -> -31.
	want := []int8{0, 32, -31, 16, 63, -63, 1, -1}
	for i := range q {
		if q[i] != want[i] {
			t.Fatalf("q[%d] = %d, want %d (x=%g)", i, q[i], want[i], x[i])
		}
	}
	if clipped := QuantizeVec(q[:1], []float64{2.5}, inv); !clipped {
		t.Fatal("out-of-envelope input not reported clipped")
	}
	if q[0] != QuantMax {
		t.Fatalf("clipped value = %d, want %d", q[0], QuantMax)
	}
}

func BenchmarkQuantPanelSweep(b *testing.B) {
	in, out := 30, 48
	w := make([]int8, in*out)
	x := make([]int8, in)
	for i := range w {
		w[i] = int8((i*37)%127 - 63)
	}
	for i := range x {
		x[i] = 3
	}
	p := PackQuantPanel(w, in, out)
	ux := make([]uint64, in)
	dst := make([]int32, out)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		p.Sweep(dst, x, ux)
	}
}
