package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The injector's crash model: the armed op fails, every later mutating
// op fails with ErrCrashed, and a torn write leaves a prefix on disk.
func TestFaultFSCrashModel(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)

	// Op 1: create. Op 2: write (armed) — torn. Op 3+: dead.
	ffs.Arm(2)
	f, err := ffs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write committed %d bytes, want %d", n, len(payload)/2)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	f.Close()
	if err := ffs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	if got, _ := os.ReadFile(filepath.Join(dir, "a")); string(got) != "01234567" {
		t.Fatalf("on-disk prefix %q", got)
	}
	if ffs.Faults() != 1 || !ffs.Crashed() {
		t.Fatalf("faults=%d crashed=%v", ffs.Faults(), ffs.Crashed())
	}

	// Disarm resurrects the filesystem and restarts the op count.
	ffs.Disarm()
	if ffs.Crashed() || ffs.Ops() != 0 {
		t.Fatal("disarm did not reset")
	}
	if err := ffs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
}

// Short reads return truncated content with no error — only a checksum
// can catch them.
func TestFaultFSShortRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(nil)
	ffs.SetShortRead(0.5)
	got, err := ffs.ReadFile(path)
	if err != nil || string(got) != "01234" {
		t.Fatalf("short read: %q, %v", got, err)
	}
	ffs.SetShortRead(0)
	got, err = ffs.ReadFile(path)
	if err != nil || len(got) != 10 {
		t.Fatalf("full read: %q, %v", got, err)
	}
}
