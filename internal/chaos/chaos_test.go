package chaos

import (
	"bytes"
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair builds a wrapped/raw conn pair over an in-memory pipe.
func pipePair(t *testing.T, in *Injector) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return in.Wrap(a), b
}

func TestPassThrough(t *testing.T) {
	in := New(1)
	w, r := pipePair(t, in)
	msg := []byte("hello across the wire")
	go w.Write(msg)
	got := make([]byte, len(msg))
	if _, err := readFull(r, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload altered with no faults armed: %q", got)
	}
	if st := in.Stats(); st.Drops+st.Partials+st.Corrupts+st.Resets != 0 {
		t.Fatalf("fault counters moved with no faults armed: %+v", st)
	}
}

func TestCorruptAltersPayload(t *testing.T) {
	in := New(7)
	in.SetCorruptRate(1)
	w, r := pipePair(t, in)
	msg := []byte("pristine payload bytes")
	go w.Write(msg)
	got := make([]byte, len(msg))
	if _, err := readFull(r, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("corrupt rate 1 delivered the payload unaltered")
	}
	if in.Stats().Corrupts == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestDropKillsConn(t *testing.T) {
	in := New(3)
	in.SetDropRate(1)
	w, _ := pipePair(t, in)
	if _, err := w.Write([]byte("x")); !errors.Is(err, errInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if in.Open() != 0 {
		t.Fatalf("dropped conn still tracked: %d open", in.Open())
	}
}

func TestPartialWriteTruncates(t *testing.T) {
	in := New(5)
	in.SetPartialRate(1)
	w, r := pipePair(t, in)
	msg := make([]byte, 64)
	done := make(chan int, 1)
	go func() {
		got := make([]byte, len(msg))
		n, _ := r.Read(got)
		done <- n
	}()
	if _, err := w.Write(msg); !errors.Is(err, errInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if n := <-done; n == 0 || n >= len(msg) {
		t.Fatalf("partial write delivered %d of %d bytes", n, len(msg))
	}
}

func TestStallHonorsDeadline(t *testing.T) {
	in := New(9)
	in.SetStalled(true)
	w, _ := pipePair(t, in)
	w.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := w.Write([]byte("x"))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stall error is not a net timeout: %v", err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("stall returned after %v, before the deadline", el)
	}
}

func TestStallClears(t *testing.T) {
	in := New(11)
	in.SetStalled(true)
	w, r := pipePair(t, in)
	go func() {
		time.Sleep(20 * time.Millisecond)
		in.SetStalled(false)
	}()
	go w.Write([]byte("x"))
	got := make([]byte, 1)
	if _, err := readFull(r, got); err != nil {
		t.Fatalf("read after thaw: %v", err)
	}
}

func TestBlackholeSwallowsWrites(t *testing.T) {
	in := New(13)
	in.SetBlackhole(true)
	w, r := pipePair(t, in)
	if n, err := w.Write([]byte("vanish")); err != nil || n != 6 {
		t.Fatalf("blackholed write: n=%d err=%v", n, err)
	}
	r.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if n, err := r.Read(make([]byte, 8)); err == nil {
		t.Fatalf("blackholed bytes arrived: %d", n)
	}
}

func TestKillAllSeversEverything(t *testing.T) {
	in := New(17)
	w1, _ := pipePair(t, in)
	w2, _ := pipePair(t, in)
	if in.Open() != 2 {
		t.Fatalf("want 2 tracked, got %d", in.Open())
	}
	in.KillAll()
	if in.Open() != 0 {
		t.Fatalf("KillAll left %d tracked", in.Open())
	}
	if _, err := w1.c.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn 1 survived KillAll")
	}
	if _, err := w2.c.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn 2 survived KillAll")
	}
}

func TestResetOnAccept(t *testing.T) {
	in := New(19)
	in.SetResetRate(1)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listener(raw)
	defer ln.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			defer c.Close()
			c.SetReadDeadline(time.Now().Add(time.Second))
			c.Read(make([]byte, 1)) // observes the reset as EOF
		}
	}()
	c, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("reset-on-accept conn accepted a write")
	}
	if in.Stats().Resets == 0 {
		t.Fatal("reset not counted")
	}
}

func TestDeterministicStream(t *testing.T) {
	draw := func(seed uint64) []int {
		in := New(seed)
		out := make([]int, 16)
		for i := range out {
			out[i] = in.intn(1000)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d != %d", i, a[i], b[i])
		}
	}
}

func readFull(r net.Conn, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := r.Read(b[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
