package chaos

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// This file extends the injector family to the filesystem: FS is the
// seam the surrogate registry does all its mutating I/O through, OSFS is
// the real thing, and FaultFS is the crash simulator — it fails the n-th
// filesystem operation (torn writes included) and then fails everything
// after it, which is exactly what a process that died at that instant
// would have left on disk. The registry crash-consistency test walks the
// fail point across every operation of a publish and asserts recovery.

// ErrInjectedFault marks the operation a FaultFS was armed to fail.
var ErrInjectedFault = errors.New("chaos: injected fs fault")

// ErrCrashed marks operations attempted after the injected fault: the
// simulated process is dead, nothing else reaches the disk.
var ErrCrashed = errors.New("chaos: fs crashed")

// File is the mutable-file surface the registry needs: stream writes,
// durability, close.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations behind atomic publish. Methods
// mirror the os package; SyncDir is the directory-fsync that makes a
// rename durable.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	Create(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	ReadFile(path string) ([]byte, error)
	// ReadDir returns the names (not paths) of the directory's entries.
	ReadDir(path string) ([]string, error)
	SyncDir(path string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) Create(path string) (File, error) { return os.Create(path) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// FaultFS wraps an FS with deterministic crash injection. Arm(n) makes
// the n-th subsequent operation (1-based) fail with ErrInjectedFault —
// a Write fails torn, committing a prefix of the buffer first — and
// every mutating operation after that fails with ErrCrashed, emulating
// the process dying at that exact point. Reads can instead be truncated
// with SetShortRead to model a torn read of an otherwise-durable file.
// All methods are safe for concurrent use.
type FaultFS struct {
	mu     sync.Mutex
	inner  FS
	ops    int     // operations observed since the last Arm/Disarm
	failAt int     // 1-based op index to fail, 0 = disarmed
	torn   float64 // fraction of a failing write that still hits the disk
	short  float64 // >0: ReadFile returns only this fraction, no error
	crash  bool
	faults int64
}

// NewFaultFS wraps inner (nil = the real filesystem) with a disarmed
// injector; failing writes commit half their buffer by default.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner, torn: 0.5}
}

// Arm schedules the n-th subsequent operation (1-based) to fail and
// resets the operation counter and crash state.
func (f *FaultFS) Arm(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.failAt = n
	f.crash = false
}

// Disarm clears the fail point and crash state; the op counter restarts.
func (f *FaultFS) Disarm() { f.Arm(0) }

// SetTornFraction sets how much of a failing write's buffer still
// reaches the disk (clamped to [0, 1]).
func (f *FaultFS) SetTornFraction(frac float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	f.torn = frac
}

// SetShortRead makes every ReadFile return only the leading frac of the
// file without an error — the torn-read fault only checksums catch.
// frac <= 0 or >= 1 disables it.
func (f *FaultFS) SetShortRead(frac float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.short = frac
}

// Ops reports operations observed since the last Arm/Disarm — the count
// a crash-consistency test sweeps its fail point across.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Faults reports injected faults since construction.
func (f *FaultFS) Faults() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// Crashed reports whether the fail point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crash
}

// step accounts one operation and decides its fate.
func (f *FaultFS) step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crash {
		return ErrCrashed
	}
	f.ops++
	if f.failAt > 0 && f.ops == f.failAt {
		f.crash = true
		f.faults++
		return ErrInjectedFault
	}
	return nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.step(); err != nil {
		return fmt.Errorf("mkdir %s: %w", path, err)
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Create(path string) (File, error) {
	if err := f.step(); err != nil {
		return nil, fmt.Errorf("create %s: %w", path, err)
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: path}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.step(); err != nil {
		return fmt.Errorf("rename %s: %w", oldpath, err)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if err := f.step(); err != nil {
		return fmt.Errorf("remove %s: %w", path, err)
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.step(); err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	data, err := f.inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	short := f.short
	f.mu.Unlock()
	if short > 0 && short < 1 {
		data = data[:int(float64(len(data))*short)]
	}
	return data, nil
}

func (f *FaultFS) ReadDir(path string) ([]string, error) {
	if err := f.step(); err != nil {
		return nil, fmt.Errorf("readdir %s: %w", path, err)
	}
	return f.inner.ReadDir(path)
}

func (f *FaultFS) SyncDir(path string) error {
	if err := f.step(); err != nil {
		return fmt.Errorf("syncdir %s: %w", path, err)
	}
	return f.inner.SyncDir(path)
}

// faultFile threads every file operation back through the injector's
// op ladder, with torn-write semantics on the armed fault.
type faultFile struct {
	fs   *FaultFS
	f    File
	path string
}

func (w *faultFile) Write(p []byte) (int, error) {
	if err := w.fs.step(); err != nil {
		if errors.Is(err, ErrInjectedFault) {
			// The torn write: a prefix reached the page cache before the
			// crash. The file is left with partial content and no error
			// ever told the writer how much.
			w.fs.mu.Lock()
			n := int(float64(len(p)) * w.fs.torn)
			w.fs.mu.Unlock()
			if n > 0 {
				w.f.Write(p[:n])
			}
			return n, fmt.Errorf("write %s: %w", w.path, err)
		}
		return 0, fmt.Errorf("write %s: %w", w.path, err)
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	if err := w.fs.step(); err != nil {
		return fmt.Errorf("sync %s: %w", w.path, err)
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error {
	// Close always reaches the real file (a dying process's descriptors
	// close too), but a crashed injector still reports the error so the
	// caller's cleanup path is exercised.
	err := w.fs.step()
	if cerr := w.f.Close(); err == nil {
		return cerr
	}
	return fmt.Errorf("close %s: %w", w.path, err)
}
