// Package chaos is a programmable fault injector for net.Conn and
// net.Listener, the test harness behind the failure-domain hardening
// work: it wraps real transports and corrupts, delays, truncates, stalls,
// blackholes or kills the traffic flowing through them, on demand and
// deterministically (seeded xrand stream).
//
// The injector sits on either side of a wire: wrap a server's listener
// with Wrap, or hand Dialer to a client config. Faults are toggled at
// runtime through atomic setters, so a soak test can phase through fault
// regimes against live load without synchronization. Every injected fault
// is counted, and every tracked connection can be severed at once with
// KillAll — the "switch reboot" primitive recovery tests are built on.
package chaos

import (
	"errors"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// errInjected marks connection-fatal injected faults so tests can tell
// deliberate breakage from accidental breakage.
var errInjected = errors.New("chaos: injected fault")

// Stats is a snapshot of the injector's fault counters.
type Stats struct {
	// Conns counts connections currently tracked (open through this
	// injector).
	Conns int
	// Drops, Partials, Corrupts, Resets, Delays count injected faults by
	// kind since construction.
	Drops, Partials, Corrupts, Resets, Delays int64
}

// Injector holds the fault configuration and the set of live connections
// it has wrapped. All methods are safe for concurrent use.
type Injector struct {
	dropRate    atomic.Uint64 // float64 bits: P(kill conn on an I/O op)
	corruptRate atomic.Uint64 // float64 bits: P(flip a byte in a write)
	partialRate atomic.Uint64 // float64 bits: P(truncate a write, then kill)
	resetRate   atomic.Uint64 // float64 bits: P(close a conn straight after accept)
	delay       atomic.Int64  // nanoseconds added to every I/O op
	stalled     atomic.Bool   // I/O blocks until cleared or deadline
	blackhole   atomic.Bool   // writes vanish, reporting success

	rmu sync.Mutex
	rng *xrand.Rand

	cmu   sync.Mutex
	conns map[*Conn]struct{}

	drops, partials, corrupts, resets, delays atomic.Int64
}

// New builds an injector with no faults armed; seed fixes its random
// stream so a failing soak replays byte-for-byte.
func New(seed uint64) *Injector {
	return &Injector{rng: xrand.New(seed), conns: map[*Conn]struct{}{}}
}

// SetDropRate arms per-operation connection kills: each read or write
// dies (closing the connection) with probability p.
func (in *Injector) SetDropRate(p float64) { in.dropRate.Store(math.Float64bits(p)) }

// SetCorruptRate arms payload corruption: each write has one byte XOR-ed
// with probability p. The connection survives — corruption is the fault
// the frame parser, not the transport, must catch.
func (in *Injector) SetCorruptRate(p float64) { in.corruptRate.Store(math.Float64bits(p)) }

// SetPartialRate arms truncated writes: with probability p only a random
// prefix of the buffer is written and the connection then dies, leaving
// the peer a half frame.
func (in *Injector) SetPartialRate(p float64) { in.partialRate.Store(math.Float64bits(p)) }

// SetResetRate arms accept-time resets: an accepted connection is closed
// immediately with probability p, before the peer writes a byte.
func (in *Injector) SetResetRate(p float64) { in.resetRate.Store(math.Float64bits(p)) }

// SetDelay adds a fixed latency to every read and write.
func (in *Injector) SetDelay(d time.Duration) { in.delay.Store(int64(d)) }

// SetStalled freezes (true) or thaws (false) all I/O through the
// injector: operations block — honoring deadlines — until thawed. The
// write-stall watchdog and client deadline-grace paths are exercised
// through this.
func (in *Injector) SetStalled(v bool) { in.stalled.Store(v) }

// SetBlackhole makes writes vanish while reporting success — the
// silent-partition fault no transport error ever surfaces for.
func (in *Injector) SetBlackhole(v bool) { in.blackhole.Store(v) }

// Clear disarms every fault.
func (in *Injector) Clear() {
	in.SetDropRate(0)
	in.SetCorruptRate(0)
	in.SetPartialRate(0)
	in.SetResetRate(0)
	in.SetDelay(0)
	in.SetStalled(false)
	in.SetBlackhole(false)
}

// KillAll severs every tracked connection at once.
func (in *Injector) KillAll() {
	in.cmu.Lock()
	conns := make([]*Conn, 0, len(in.conns))
	for c := range in.conns {
		conns = append(conns, c)
	}
	in.cmu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Open reports how many wrapped connections are currently open.
func (in *Injector) Open() int {
	in.cmu.Lock()
	defer in.cmu.Unlock()
	return len(in.conns)
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Conns:    in.Open(),
		Drops:    in.drops.Load(),
		Partials: in.partials.Load(),
		Corrupts: in.corrupts.Load(),
		Resets:   in.resets.Load(),
		Delays:   in.delays.Load(),
	}
}

// hit draws a Bernoulli with the given float-bits probability.
func (in *Injector) hit(rate *atomic.Uint64) bool {
	p := math.Float64frombits(rate.Load())
	if p <= 0 {
		return false
	}
	in.rmu.Lock()
	v := in.rng.Float64()
	in.rmu.Unlock()
	return v < p
}

// intn draws a uniform int in [0, n) from the injector's stream.
func (in *Injector) intn(n int) int {
	in.rmu.Lock()
	defer in.rmu.Unlock()
	return int(in.rng.Uint64() % uint64(n))
}

// Wrap tracks and fault-wraps an established connection.
func (in *Injector) Wrap(c net.Conn) *Conn {
	cc := &Conn{inj: in, c: c}
	in.cmu.Lock()
	in.conns[cc] = struct{}{}
	in.cmu.Unlock()
	return cc
}

func (in *Injector) untrack(c *Conn) {
	in.cmu.Lock()
	delete(in.conns, c)
	in.cmu.Unlock()
}

// Listener wraps ln so every accepted connection flows through the
// injector.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: in}
}

// Dialer wraps an address dialer so every dialed connection flows through
// the injector. inner nil uses net.DialTimeout("tcp", ...). The signature
// matches the client config's Dialer hook structurally, so chaos needs no
// import of the serving packages.
func (in *Injector) Dialer(inner func(addr string, timeout time.Duration) (net.Conn, error)) func(addr string, timeout time.Duration) (net.Conn, error) {
	if inner == nil {
		inner = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := inner(addr, timeout)
		if err != nil {
			return nil, err
		}
		return in.Wrap(c), nil
	}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (ln *listener) Accept() (net.Conn, error) {
	c, err := ln.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cc := ln.inj.Wrap(c)
	if ln.inj.hit(&ln.inj.resetRate) {
		// Reset-on-accept: the peer sees its freshly dialed connection
		// die. Still return the (dead) conn so the accept loop's
		// bookkeeping stays uniform.
		ln.inj.resets.Add(1)
		cc.Close()
	}
	return cc, nil
}

// Conn is a fault-wrapped connection. The deadline setters both forward
// to the underlying connection and record the deadline locally, so
// injected stalls and delays honor it the way a real socket would.
type Conn struct {
	inj    *Injector
	c      net.Conn
	closed atomic.Bool
	rdl    atomic.Int64 // read deadline, unix nanos (0 = none)
	wdl    atomic.Int64 // write deadline, unix nanos (0 = none)
}

// fault runs the shared pre-I/O fault ladder: delay, stall, drop. A
// non-nil error means the operation must fail with it.
func (c *Conn) fault(dl *atomic.Int64) error {
	in := c.inj
	if d := time.Duration(in.delay.Load()); d > 0 {
		in.delays.Add(1)
		if lim := dl.Load(); lim != 0 {
			if left := time.Until(time.Unix(0, lim)); left < d {
				if left > 0 {
					time.Sleep(left)
				}
				return os.ErrDeadlineExceeded
			}
		}
		time.Sleep(d)
	}
	for in.stalled.Load() {
		if c.closed.Load() {
			return net.ErrClosed
		}
		if lim := dl.Load(); lim != 0 && time.Now().UnixNano() >= lim {
			return os.ErrDeadlineExceeded
		}
		time.Sleep(200 * time.Microsecond)
	}
	if in.hit(&in.dropRate) {
		in.drops.Add(1)
		c.Close()
		return errInjected
	}
	return nil
}

func (c *Conn) Read(b []byte) (int, error) {
	if err := c.fault(&c.rdl); err != nil {
		return 0, err
	}
	return c.c.Read(b)
}

func (c *Conn) Write(b []byte) (int, error) {
	if err := c.fault(&c.wdl); err != nil {
		return 0, err
	}
	in := c.inj
	if in.blackhole.Load() {
		// The write "succeeds" and the bytes go nowhere: the peer never
		// answers, and no error ever surfaces here.
		return len(b), nil
	}
	if len(b) > 1 && in.hit(&in.partialRate) {
		in.partials.Add(1)
		n, _ := c.c.Write(b[:1+in.intn(len(b)-1)])
		c.Close()
		return n, errInjected
	}
	if len(b) > 0 && in.hit(&in.corruptRate) {
		in.corrupts.Add(1)
		cp := make([]byte, len(b))
		copy(cp, b)
		cp[in.intn(len(cp))] ^= 0xA5
		return c.c.Write(cp)
	}
	return c.c.Write(b)
}

func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.inj.untrack(c)
	return c.c.Close()
}

func (c *Conn) LocalAddr() net.Addr  { return c.c.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

func (c *Conn) SetDeadline(t time.Time) error {
	c.rdl.Store(nanos(t))
	c.wdl.Store(nanos(t))
	return c.c.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rdl.Store(nanos(t))
	return c.c.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wdl.Store(nanos(t))
	return c.c.SetWriteDeadline(t)
}

func nanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}
