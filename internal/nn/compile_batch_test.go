package nn

import (
	"math"
	"sync"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// batchProbe builds a deterministic input batch.
func batchProbe(rng *xrand.Rand, rows, cols int) *tensor.Matrix {
	x := tensor.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.Range(-2, 2)
	}
	return x
}

// TestCompiledPredictBatchMatchesPredict checks the fused batch program
// against the single-query paths, including inputs wider than the
// compiled chunk width (which must split internally, not degrade).
func TestCompiledPredictBatchMatchesPredict(t *testing.T) {
	rng := xrand.New(31)
	net := NewMLP(rng, Tanh, 0.1, 6, 30, 48, 3)
	for _, maxBatch := range []int{1, 4, 64} {
		c := net.CompileBatch(maxBatch)
		if c == nil {
			t.Fatal("CompileBatch returned nil for a Dense/Dropout network")
		}
		if c.MaxBatch() != maxBatch {
			t.Fatalf("MaxBatch() = %d, want %d", c.MaxBatch(), maxBatch)
		}
		x := batchProbe(rng.Split(), 13, 6) // 13 rows: exercises partial chunks
		got := c.PredictBatch(x, nil)
		for i := 0; i < x.Rows; i++ {
			want := net.Predict(x.Row(i))
			for j := range want {
				if math.Abs(got.At(i, j)-want[j]) > 1e-12 {
					t.Fatalf("maxBatch=%d row %d output %d: batch %g vs single %g",
						maxBatch, i, j, got.At(i, j), want[j])
				}
			}
		}
	}
}

// TestCompiledPredictBatchZeroAlloc pins the tentpole contract: a warmed
// batch forward with a caller-provided destination allocates nothing,
// even when the input spans several chunks.
func TestCompiledPredictBatchZeroAlloc(t *testing.T) {
	skipAllocCheckUnderRace(t)
	oldT := tensor.ParallelFlopThreshold
	tensor.ParallelFlopThreshold = 1 << 60 // keep kernels inline: fan-out allocates
	defer func() { tensor.ParallelFlopThreshold = oldT }()
	rng := xrand.New(32)
	net := NewMLP(rng, Tanh, 0.1, 6, 30, 48, 3)
	c := net.CompileBatch(8)
	x := batchProbe(rng, 20, 6) // 3 chunks
	dst := tensor.NewMatrix(20, 3)
	c.PredictBatch(x, dst) // warm the ctx pool
	if allocs := testing.AllocsPerRun(100, func() { c.PredictBatch(x, dst) }); allocs != 0 {
		t.Fatalf("compiled PredictBatch allocates %g times per batch, want 0", allocs)
	}
}

// TestCompiledPredictMCBatchZeroAlloc pins the same contract for the
// pass-stacked MC path on a deep two-dropout surrogate.
func TestCompiledPredictMCBatchZeroAlloc(t *testing.T) {
	skipAllocCheckUnderRace(t)
	oldT := tensor.ParallelFlopThreshold
	tensor.ParallelFlopThreshold = 1 << 60
	defer func() { tensor.ParallelFlopThreshold = oldT }()
	rng := xrand.New(33)
	net := NewMLP(rng, Tanh, 0.2, 6, 12, 8, 2)
	c := net.CompileBatch(8)
	x := batchProbe(rng, 20, 6)
	mean := tensor.NewMatrix(20, 2)
	std := tensor.NewMatrix(20, 2)
	c.PredictMCBatch(x, 10, mean, std)
	if allocs := testing.AllocsPerRun(100, func() { c.PredictMCBatch(x, 10, mean, std) }); allocs != 0 {
		t.Fatalf("compiled PredictMCBatch allocates %g times per batch, want 0", allocs)
	}
}

// TestCompiledPredictMCBatchDeterministicNet checks the no-dropout
// collapse: the MC batch path must equal the eval batch pass with exactly
// zero std, across chunked inputs.
func TestCompiledPredictMCBatchDeterministicNet(t *testing.T) {
	rng := xrand.New(34)
	net := NewMLP(rng, Tanh, 0, 5, 16, 16, 2) // no dropout anywhere
	c := net.CompileBatch(4)
	x := batchProbe(rng, 11, 5)
	mean, std := c.PredictMCBatch(x, 7, nil, nil)
	want := c.PredictBatch(x, nil)
	if !tensor.Equal(mean, want, 0) {
		t.Fatal("deterministic MC batch mean differs from eval batch pass")
	}
	for _, v := range std.Data {
		if v != 0 {
			t.Fatalf("deterministic MC batch std %g, want exactly 0", v)
		}
	}
}

// TestCompiledPredictMCBatchColumnSharedMasks checks the pass-stacking
// semantics: masks are sampled once per pass and shared by every row of
// the chunk, so identical input rows inside one chunk must receive
// identical MC statistics.
func TestCompiledPredictMCBatchColumnSharedMasks(t *testing.T) {
	rng := xrand.New(35)
	net := NewMLP(rng, Tanh, 0.3, 4, 16, 8, 2) // two live dropout layers
	c := net.CompileBatch(16)                  // one chunk for the whole batch
	x := tensor.NewMatrix(6, 4)
	row := []float64{0.4, -0.7, 0.2, 0.9}
	for i := 0; i < x.Rows; i++ {
		copy(x.Row(i), row)
	}
	mean, std := c.PredictMCBatch(x, 9, nil, nil)
	for i := 1; i < x.Rows; i++ {
		for j := 0; j < 2; j++ {
			if mean.At(i, j) != mean.At(0, j) || std.At(i, j) != std.At(0, j) {
				t.Fatalf("row %d stats differ from row 0: masks not shared across the chunk", i)
			}
		}
	}
	for j := 0; j < 2; j++ {
		if std.At(0, j) <= 0 || math.IsNaN(std.At(0, j)) {
			t.Fatalf("deep dropout net std[%d] = %g, want > 0", j, std.At(0, j))
		}
	}
}

// TestCompiledPredictMCBatchAgreesWithPredictor is the statistical check
// that pass-stacked evaluation estimates the same predictive distribution
// as the per-pass suffix-replay Predictor on a deep multi-dropout net:
// with many passes both means must agree within a few standard errors.
func TestCompiledPredictMCBatchAgreesWithPredictor(t *testing.T) {
	rng := xrand.New(36)
	net := NewMLP(rng, Tanh, 0.2, 4, 24, 16, 1)
	c := net.CompileBatch(8)
	x := batchProbe(rng, 8, 4)
	const passes = 400
	mean, std := c.PredictMCBatch(x, passes, nil, nil)
	p := net.NewPredictor()
	refMean, refStd := p.PredictMCBatch(x, passes)
	for i := 0; i < x.Rows; i++ {
		// Standard error of each estimate is ~std/sqrt(passes); allow 6x
		// the combined value so the test is deterministic-in-practice.
		tol := 6 * (std.At(i, 0) + refStd.At(i, 0)) / math.Sqrt(passes)
		if d := math.Abs(mean.At(i, 0) - refMean.At(i, 0)); d > tol {
			t.Fatalf("row %d: pass-stacked mean %g vs per-pass mean %g (|d|=%g > tol %g)",
				i, mean.At(i, 0), refMean.At(i, 0), d, tol)
		}
		if r := std.At(i, 0) / refStd.At(i, 0); r < 0.5 || r > 2 {
			t.Fatalf("row %d: pass-stacked std %g vs per-pass std %g disagree beyond 2x",
				i, std.At(i, 0), refStd.At(i, 0))
		}
	}
}

// TestCompiledBatchConcurrent hammers the batch entry points from many
// goroutines (run under -race): batch contexts are pooled per call and
// must not interfere.
func TestCompiledBatchConcurrent(t *testing.T) {
	rng := xrand.New(37)
	net := NewMLP(rng, Tanh, 0.1, 4, 16, 8, 2)
	c := net.CompileBatch(4)
	x := batchProbe(rng, 10, 4)
	want := c.PredictBatch(x, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := tensor.NewMatrix(10, 2)
			mean := tensor.NewMatrix(10, 2)
			std := tensor.NewMatrix(10, 2)
			for i := 0; i < 100; i++ {
				c.PredictBatch(x, dst)
				if !tensor.Equal(dst, want, 0) {
					panic("concurrent compiled PredictBatch returned wrong values")
				}
				c.PredictMCBatch(x, 5, mean, std)
			}
		}()
	}
	wg.Wait()
}
