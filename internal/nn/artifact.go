package nn

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"unsafe"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// This file implements the serialized artifact format behind the surrogate
// registry: one self-describing binary blob that carries a trained Network
// together with its Compiled and QuantCompiled programs — panel layouts,
// quant scales, error bounds and all — so a process that pulls an artifact
// serves immediately, with zero retraining, recompilation or recalibration.
//
// Layout (all integers little-endian, every section payload 8-byte aligned
// in the file):
//
//	header:  magic "LESA" (u32) | version (u32) | section count (u32) | reserved (u32)
//	section: id (u32) | reserved (u32) | payload len (u64) | CRC64-ECMA of payload (u64)
//	         payload, zero-padded to a multiple of 8 bytes
//
// Per-section CRCs make torn or bit-flipped artifacts detectable without
// decoding; VerifyArtifact walks the envelope and checks every CRC, which
// is what the registry runs against an mmap'd file before serving it.
// Float and word arrays are stored raw, so on little-endian hosts the
// decoder aliases them straight out of the (mmap'd) buffer instead of
// copying — the Compiled/QuantCompiled programs are immutable by contract,
// which is what makes the zero-copy view safe. The mutable Network is
// always deep-copied.

const (
	artifactMagic = 0x4153454c // "LESA" little-endian
	// ArtifactVersion is the current artifact format version; decoders
	// reject anything newer (fail closed on version skew).
	ArtifactVersion = 1

	secMeta     = 1 // opaque caller metadata (the registry stores surrogate config here)
	secNet      = 2 // trainable Network: layer specs + weights
	secCompiled = 3 // float compiled program
	secQuant    = 4 // int8 quantized program

	artMaxSections = 64
	artMaxLayers   = 1024
	artMaxDim      = 1 << 20
)

var artCRCTable = crc64.MakeTable(crc64.ECMA)

// hostLittle reports whether this machine stores integers little-endian —
// the precondition for aliasing raw arrays out of the artifact buffer.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Artifact bundles everything the registry persists for one surrogate
// generation. Net is required; Compiled, Quant and Meta are optional.
type Artifact struct {
	// Meta is an opaque caller payload (config, scalers, baselines).
	Meta []byte
	// Net is the trainable network (always deep-copied on decode).
	Net *Network
	// Compiled is the float serving program, nil if absent.
	Compiled *Compiled
	// Quant is the int8 serving program, nil if absent.
	Quant *QuantCompiled
}

// Dims returns the network's input and output widths (the first dense
// layer's fan-in and the last dense layer's fan-out); ok is false when
// the network has no dense layer.
func (n *Network) Dims() (in, out int, ok bool) {
	for _, l := range n.Layers {
		if d, isDense := l.(*Dense); isDense {
			if !ok {
				in = d.In
				ok = true
			}
			out = d.Out
		}
	}
	return in, out, ok
}

// ---------------------------------------------------------------------------
// encoder

type artEnc struct {
	buf []byte
}

func (e *artEnc) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *artEnc) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *artEnc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *artEnc) align8() {
	for len(e.buf)%8 != 0 {
		e.buf = append(e.buf, 0)
	}
}

func (e *artEnc) floats(v []float64) {
	e.align8()
	for _, x := range v {
		e.f64(x)
	}
}

func (e *artEnc) words(v []uint64) {
	e.align8()
	for _, x := range v {
		e.u64(x)
	}
}

func (e *artEnc) i32s(v []int32) {
	e.align8()
	for _, x := range v {
		e.u32(uint32(x))
	}
}

// EncodeArtifact serializes a into the checksummed binary artifact format.
func EncodeArtifact(a *Artifact) ([]byte, error) {
	if a.Net == nil {
		return nil, fmt.Errorf("nn: artifact needs a network")
	}
	type section struct {
		id      uint32
		payload []byte
	}
	var secs []section
	if a.Meta != nil {
		secs = append(secs, section{secMeta, a.Meta})
	}
	net, err := encodeNetPayload(a.Net)
	if err != nil {
		return nil, err
	}
	secs = append(secs, section{secNet, net})
	if a.Compiled != nil {
		secs = append(secs, section{secCompiled, encodeCompiledPayload(a.Compiled)})
	}
	if a.Quant != nil {
		secs = append(secs, section{secQuant, encodeQuantPayload(a.Quant)})
	}

	var e artEnc
	e.u32(artifactMagic)
	e.u32(ArtifactVersion)
	e.u32(uint32(len(secs)))
	e.u32(0)
	for _, s := range secs {
		e.u32(s.id)
		e.u32(0)
		e.u64(uint64(len(s.payload)))
		e.u64(crc64.Checksum(s.payload, artCRCTable))
		e.buf = append(e.buf, s.payload...)
		e.align8()
	}
	return e.buf, nil
}

func encodeNetPayload(n *Network) ([]byte, error) {
	var e artEnc
	e.u32(uint32(len(n.Layers)))
	for _, l := range n.Layers {
		switch ly := l.(type) {
		case *Dense:
			e.u32(0) // kind: dense
			e.u32(uint32(ly.In))
			e.u32(uint32(ly.Out))
			e.u32(uint32(ly.Act))
			e.floats(ly.W.Data)
			e.floats(ly.B.Data)
		case *Dropout:
			e.u32(1) // kind: dropout
			e.align8()
			e.f64(ly.P)
		default:
			return nil, fmt.Errorf("nn: cannot serialize layer type %T", l)
		}
	}
	return e.buf, nil
}

func encodeCompiledPayload(c *Compiled) []byte {
	var e artEnc
	e.u32(uint32(c.in))
	e.u32(uint32(c.out))
	e.u32(uint32(c.maxBatch))
	e.u32(uint32(len(c.steps)))
	e.u64(c.seedBase)
	for i := range c.steps {
		st := &c.steps[i]
		switch st.kind {
		case stepDense:
			e.u32(0)
			e.u32(uint32(st.in))
			e.u32(uint32(st.out))
			e.u32(uint32(st.act))
			e.floats(st.w)
			e.floats(st.b)
		case stepDropout:
			e.u32(1)
			e.align8()
			e.f64(st.p)
		}
	}
	return e.buf
}

func encodeQuantPayload(q *QuantCompiled) []byte {
	var e artEnc
	e.u32(uint32(q.in))
	e.u32(uint32(q.out))
	e.u32(uint32(len(q.steps)))
	e.u32(0)
	e.u64(q.seedBase)
	e.f64(q.inScale)
	e.f64(q.invIn)
	e.f64(q.boundMax)
	e.f64(q.calErr)
	e.f64(q.gate)
	e.floats(q.bound)
	for i := range q.steps {
		st := &q.steps[i]
		switch st.kind {
		case stepDense:
			e.u32(0)
			e.u32(uint32(st.in))
			e.u32(uint32(st.out))
			fused := uint32(0)
			if st.fused {
				fused = 1
			}
			e.u32(uint32(st.act))
			e.u32(fused)
			e.u32(0)
			e.floats(st.wscale)
			e.floats(st.b)
			e.words(st.panel.Words)
			e.i32s(st.panel.ColCorr)
			if st.fused {
				e.floats(st.aF)
				e.floats(st.cF)
				e.floats(st.aFmc)
			} else {
				e.floats(st.sEff)
				e.floats(st.sEffMC)
			}
		case stepDropout:
			e.u32(1)
			e.align8()
			e.f64(st.p)
		}
	}
	return e.buf
}

// ---------------------------------------------------------------------------
// decoder

type artDec struct {
	data []byte
	off  int
	err  error
}

func (d *artDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("nn: artifact: "+format, args...)
	}
}

func (d *artDec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.data)-d.off < n {
		d.fail("truncated (want %d bytes at offset %d of %d)", n, d.off, len(d.data))
		return false
	}
	return true
}

func (d *artDec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

func (d *artDec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

func (d *artDec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *artDec) align8() {
	if pad := (8 - d.off%8) % 8; pad > 0 {
		if d.need(pad) {
			d.off += pad
		}
	}
}

// dim reads a u32 that must be a positive dimension within the sanity cap.
func (d *artDec) dim(what string) int {
	v := d.u32()
	if d.err == nil && (v == 0 || v > artMaxDim) {
		d.fail("%s %d out of range", what, v)
	}
	return int(v)
}

// alias returns an n-element view over the next n*size bytes of the
// buffer, reinterpreted in place when host endianness and alignment
// allow, copied element-wise otherwise. The bounds check runs before any
// allocation, so a hostile length field cannot force a huge allocation —
// the data has to actually be present.
func (d *artDec) floats(n int) []float64 {
	d.align8()
	if !d.need(n * 8) {
		return nil
	}
	start := d.off
	d.off += n * 8
	if n == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&d.data[start]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&d.data[start])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.data[start+i*8:]))
	}
	return out
}

func (d *artDec) words(n int) []uint64 {
	d.align8()
	if !d.need(n * 8) {
		return nil
	}
	start := d.off
	d.off += n * 8
	if n == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&d.data[start]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&d.data[start])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(d.data[start+i*8:])
	}
	return out
}

func (d *artDec) i32s(n int) []int32 {
	d.align8()
	if !d.need(n * 4) {
		return nil
	}
	start := d.off
	d.off += n * 4
	if n == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&d.data[start]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&d.data[start])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.data[start+i*4:]))
	}
	return out
}

// floatsCopy is the always-copy variant for mutable consumers (Network
// weights must not alias an mmap'd read-only buffer).
func (d *artDec) floatsCopy(n int) []float64 {
	v := d.floats(n)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	copy(out, v)
	return out
}

type artSection struct {
	id      uint32
	payload []byte
}

// walkSections parses and integrity-checks the artifact envelope: magic,
// version, section headers, payload bounds and every per-section CRC.
func walkSections(data []byte) ([]artSection, error) {
	d := &artDec{data: data}
	if m := d.u32(); d.err == nil && m != artifactMagic {
		return nil, fmt.Errorf("nn: artifact: bad magic %#08x", m)
	}
	if v := d.u32(); d.err == nil && v != ArtifactVersion {
		return nil, fmt.Errorf("nn: artifact: unsupported version %d (have %d)", v, ArtifactVersion)
	}
	nsec := d.u32()
	d.u32() // reserved
	if d.err != nil {
		return nil, d.err
	}
	if nsec == 0 || nsec > artMaxSections {
		return nil, fmt.Errorf("nn: artifact: section count %d out of range", nsec)
	}
	secs := make([]artSection, 0, nsec)
	for i := uint32(0); i < nsec; i++ {
		id := d.u32()
		d.u32() // reserved
		plen := d.u64()
		crc := d.u64()
		if d.err != nil {
			return nil, d.err
		}
		if plen > uint64(len(data)-d.off) {
			return nil, fmt.Errorf("nn: artifact: section %d truncated (claims %d bytes, %d remain)", id, plen, len(data)-d.off)
		}
		payload := data[d.off : d.off+int(plen)]
		if crc64.Checksum(payload, artCRCTable) != crc {
			return nil, fmt.Errorf("nn: artifact: section %d checksum mismatch", id)
		}
		d.off += int(plen)
		d.align8()
		if d.err != nil {
			return nil, d.err
		}
		secs = append(secs, artSection{id: id, payload: payload})
	}
	return secs, nil
}

// VerifyArtifact checks the artifact envelope and every section CRC
// without decoding any payload — the cheap integrity pass the registry
// runs before serving an mmap'd file.
func VerifyArtifact(data []byte) error {
	_, err := walkSections(data)
	return err
}

// DecodeArtifact parses and validates a serialized artifact. The Compiled
// and QuantCompiled programs alias data where the host allows (zero-copy
// over an mmap), so data must stay mapped and unmodified for the life of
// the returned programs; the Network is always an independent copy. rng
// powers dropout streams on the restored network. Every structural claim
// in the payload is validated — a corrupt or hostile artifact fails
// closed with an error, never a panic downstream.
func DecodeArtifact(data []byte, rng *xrand.Rand) (*Artifact, error) {
	secs, err := walkSections(data)
	if err != nil {
		return nil, err
	}
	a := &Artifact{}
	for _, s := range secs {
		switch s.id {
		case secMeta:
			a.Meta = s.payload
		case secNet:
			if a.Net, err = decodeNetPayload(s.payload, rng); err != nil {
				return nil, err
			}
		case secCompiled:
			if a.Compiled, err = decodeCompiledPayload(s.payload); err != nil {
				return nil, err
			}
		case secQuant:
			if a.Quant, err = decodeQuantPayload(s.payload); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("nn: artifact: unknown section id %d", s.id)
		}
	}
	if a.Net == nil {
		return nil, fmt.Errorf("nn: artifact: missing network section")
	}
	if a.Compiled != nil {
		nin, nout, _ := a.Net.Dims()
		if a.Compiled.in != nin || a.Compiled.out != nout {
			return nil, fmt.Errorf("nn: artifact: compiled dims %dx%d disagree with network %dx%d",
				a.Compiled.in, a.Compiled.out, nin, nout)
		}
	}
	if a.Quant != nil && a.Compiled != nil {
		if a.Quant.in != a.Compiled.in || a.Quant.out != a.Compiled.out {
			return nil, fmt.Errorf("nn: artifact: quant dims %dx%d disagree with compiled %dx%d",
				a.Quant.in, a.Quant.out, a.Compiled.in, a.Compiled.out)
		}
	}
	return a, nil
}

func decodeNetPayload(payload []byte, rng *xrand.Rand) (*Network, error) {
	d := &artDec{data: payload}
	nl := d.u32()
	if d.err == nil && (nl == 0 || nl > artMaxLayers) {
		d.fail("layer count %d out of range", nl)
	}
	var specs []layerSpec
	for i := uint32(0); i < nl && d.err == nil; i++ {
		switch kind := d.u32(); kind {
		case 0: // dense
			in := d.dim("dense fan-in")
			out := d.dim("dense fan-out")
			act := Activation(d.u32())
			if d.err != nil {
				break
			}
			specs = append(specs, layerSpec{
				Kind: "dense", In: in, Out: out, Act: act,
				W: d.floatsCopy(in * out),
				B: d.floatsCopy(out),
			})
		case 1: // dropout
			d.align8()
			specs = append(specs, layerSpec{Kind: "dropout", P: d.f64()})
		default:
			d.fail("unknown layer kind %d", kind)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return buildNetwork(specs, rng)
}

func decodeCompiledPayload(payload []byte) (*Compiled, error) {
	d := &artDec{data: payload}
	c := &Compiled{fs: -1}
	c.in = d.dim("compiled input width")
	c.out = d.dim("compiled output width")
	c.maxBatch = int(d.u32())
	ns := d.u32()
	c.seedBase = d.u64()
	if d.err == nil && (ns == 0 || ns > artMaxLayers) {
		d.fail("compiled step count %d out of range", ns)
	}
	if d.err == nil && (c.maxBatch < 1 || c.maxBatch > 1<<16) {
		d.fail("compiled max batch %d out of range", c.maxBatch)
	}
	width := -1
	for i := uint32(0); i < ns && d.err == nil; i++ {
		switch kind := d.u32(); kind {
		case 0: // dense
			in := d.dim("step fan-in")
			out := d.dim("step fan-out")
			act := Activation(d.u32())
			if d.err != nil {
				break
			}
			if act < Identity || act > Sigmoid {
				d.fail("step activation %d out of range", act)
				break
			}
			if width >= 0 && width != in {
				d.fail("step %d fan-in %d breaks width chain %d", i, in, width)
				break
			}
			w := d.floats(in * out)
			b := d.floats(out)
			if d.err != nil {
				break
			}
			c.steps = append(c.steps, compiledStep{
				kind: stepDense, in: in, out: out,
				w: w, wm: &tensor.Matrix{Rows: in, Cols: out, Data: w},
				b: b, act: act,
			})
			if width < 0 {
				if in != c.in {
					d.fail("first dense fan-in %d disagrees with header %d", in, c.in)
					break
				}
				if in > c.maxW {
					c.maxW = in
				}
			}
			width = out
			if width > c.maxW {
				c.maxW = width
			}
		case 1: // dropout
			d.align8()
			p := d.f64()
			if d.err != nil {
				break
			}
			if !(p >= 0 && p < 1) {
				d.fail("step dropout P %v out of range", p)
				break
			}
			if p > 0 && c.fs < 0 {
				c.fs = len(c.steps)
			}
			c.steps = append(c.steps, compiledStep{kind: stepDropout, p: p})
		default:
			d.fail("unknown step kind %d", kind)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if width < 0 {
		return nil, fmt.Errorf("nn: artifact: compiled program has no dense step")
	}
	if width != c.out {
		return nil, fmt.Errorf("nn: artifact: compiled output width %d disagrees with header %d", width, c.out)
	}
	return c, nil
}

func decodeQuantPayload(payload []byte) (*QuantCompiled, error) {
	d := &artDec{data: payload}
	q := &QuantCompiled{fs: -1}
	q.in = d.dim("quant input width")
	q.out = d.dim("quant output width")
	ns := d.u32()
	d.u32() // reserved
	q.seedBase = d.u64()
	q.inScale = d.f64()
	q.invIn = d.f64()
	q.boundMax = d.f64()
	q.calErr = d.f64()
	q.gate = d.f64()
	if d.err == nil && (ns == 0 || ns > artMaxLayers) {
		d.fail("quant step count %d out of range", ns)
	}
	if d.err != nil {
		return nil, d.err
	}
	q.bound = d.floats(q.out)
	q.maxW = q.in
	luts := map[Activation]*tensor.QuantLUT{}
	width := q.in
	lastDense := -1
	for i := uint32(0); i < ns && d.err == nil; i++ {
		switch kind := d.u32(); kind {
		case 0: // dense
			in := d.dim("quant step fan-in")
			out := d.dim("quant step fan-out")
			act := Activation(d.u32())
			fused := d.u32()
			d.u32() // reserved
			if d.err != nil {
				break
			}
			if act < Identity || act > Sigmoid {
				d.fail("quant step activation %d out of range", act)
				break
			}
			if in != width {
				d.fail("quant step %d fan-in %d breaks width chain %d", i, in, width)
				break
			}
			st := quantStep{kind: stepDense, in: in, out: out, act: act, fused: fused == 1}
			st.wscale = d.floats(out)
			st.b = d.floats(out)
			groups := (out + 3) / 4
			st.panel = tensor.QuantPanel{
				In: in, Out: out,
				Words:   d.words(groups * in),
				ColCorr: d.i32s(out),
			}
			if st.fused {
				lo, hi, ok := quantActDomain(act)
				if !ok {
					d.fail("quant step %d fused with unbounded activation %d", i, act)
					break
				}
				st.aF = d.floats(out)
				st.cF = d.floats(out)
				st.aFmc = d.floats(out)
				// LUTs are rebuilt, not stored: BuildQuantLUT is
				// deterministic, so the rebuilt table is bit-identical to
				// the one the encoder's program used.
				lut := luts[act]
				if lut == nil {
					lut = tensor.BuildQuantLUT(act.apply, lo, hi)
					luts[act] = lut
				}
				st.lut = lut
			} else {
				st.sEff = d.floats(out)
				st.sEffMC = d.floats(out)
			}
			if d.err != nil {
				break
			}
			q.steps = append(q.steps, st)
			lastDense = len(q.steps) - 1
			width = out
			if out > q.maxW {
				q.maxW = out
			}
		case 1: // dropout
			d.align8()
			p := d.f64()
			if d.err != nil {
				break
			}
			if !(p >= 0 && p < 1) {
				d.fail("quant step dropout P %v out of range", p)
				break
			}
			if p > 0 && q.fs < 0 {
				q.fs = len(q.steps)
			}
			q.steps = append(q.steps, quantStep{kind: stepDropout, p: p})
		default:
			d.fail("unknown quant step kind %d", kind)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	// The run() contract: every dense step but the last is fused (writes
	// int8 activations), the last is non-fused (dequantizes into dst,
	// which is sized q.out). A payload violating that would index dst out
	// of bounds, so it fails closed here.
	if lastDense != len(q.steps)-1 {
		return nil, fmt.Errorf("nn: artifact: quant program must end on a dense step")
	}
	for i := range q.steps {
		st := &q.steps[i]
		if st.kind != stepDense {
			continue
		}
		if isLast := i == lastDense; st.fused == isLast {
			return nil, fmt.Errorf("nn: artifact: quant step %d fused flag inconsistent with position", i)
		}
	}
	if width != q.out {
		return nil, fmt.Errorf("nn: artifact: quant output width %d disagrees with header %d", width, q.out)
	}
	if len(q.bound) != q.out {
		return nil, fmt.Errorf("nn: artifact: quant bound length mismatch")
	}
	return q, nil
}
