package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func TestActivationValues(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{Identity, 3, 3},
		{ReLU, -2, 0},
		{ReLU, 2, 2},
		{Tanh, 0, 0},
		{Sigmoid, 0, 0.5},
	}
	for _, c := range cases {
		if got := c.act.apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%v(%g) = %g want %g", c.act, c.x, got, c.want)
		}
	}
}

func TestActivationDerivativeConsistency(t *testing.T) {
	// derivFromOutput(f(x)) must match numerical derivative of f at x.
	for _, act := range []Activation{Identity, Tanh, Sigmoid} {
		for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
			h := 1e-6
			num := (act.apply(x+h) - act.apply(x-h)) / (2 * h)
			got := act.derivFromOutput(act.apply(x))
			if math.Abs(num-got) > 1e-5 {
				t.Fatalf("%v'(%g): analytic %g numeric %g", act, x, got, num)
			}
		}
	}
	// ReLU away from the kink.
	if ReLU.derivFromOutput(ReLU.apply(2)) != 1 || ReLU.derivFromOutput(ReLU.apply(-2)) != 0 {
		t.Fatal("relu derivative wrong")
	}
}

func TestDenseForwardShape(t *testing.T) {
	rng := xrand.New(1)
	d := NewDense(3, 5, ReLU, rng)
	x := tensor.NewMatrix(7, 3)
	out := d.Forward(x, false, nil)
	if out.Rows != 7 || out.Cols != 5 {
		t.Fatalf("dense output %dx%d", out.Rows, out.Cols)
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := xrand.New(1)
	d := NewDense(2, 1, Identity, rng)
	d.W.Set(0, 0, 2)
	d.W.Set(1, 0, 3)
	d.B.Set(0, 0, 1)
	out := d.Forward(tensor.FromRows([][]float64{{1, 1}}), false, nil)
	if out.At(0, 0) != 6 {
		t.Fatalf("dense forward = %g want 6", out.At(0, 0))
	}
}

// gradCheck compares analytic parameter gradients with central finite
// differences of the loss for a small network.
func gradCheck(t *testing.T, act Activation, seed uint64) {
	t.Helper()
	rng := xrand.New(seed)
	net := NewMLP(rng, act, 0, 3, 4, 2)
	x := tensor.FromRows([][]float64{{0.5, -0.2, 0.8}, {-1, 0.3, 0.1}, {0.2, 0.9, -0.4}})
	y := tensor.FromRows([][]float64{{1, 0}, {0, 1}, {0.5, 0.5}})
	loss := MSE{}

	lossAt := func() float64 {
		return loss.Value(net.Forward(x, false), y)
	}

	net.ZeroGrad()
	pred := net.Forward(x, true)
	net.Backward(loss.Grad(nil, pred, y))

	const h = 1e-6
	for pi, p := range net.Params() {
		for k := range p.Value.Data {
			orig := p.Value.Data[k]
			p.Value.Data[k] = orig + h
			up := lossAt()
			p.Value.Data[k] = orig - h
			down := lossAt()
			p.Value.Data[k] = orig
			numeric := (up - down) / (2 * h)
			analytic := p.Grad.Data[k]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%v param %d[%d]: analytic %g numeric %g", act, pi, k, analytic, numeric)
			}
		}
	}
}

func TestGradientCheckTanh(t *testing.T)     { gradCheck(t, Tanh, 11) }
func TestGradientCheckSigmoid(t *testing.T)  { gradCheck(t, Sigmoid, 12) }
func TestGradientCheckIdentity(t *testing.T) { gradCheck(t, Identity, 13) }

func TestGradientCheckCrossEntropy(t *testing.T) {
	rng := xrand.New(21)
	net := NewMLP(rng, Tanh, 0, 4, 6, 3)
	x := tensor.FromRows([][]float64{{0.1, -0.5, 0.7, 0.2}, {0.9, 0.4, -0.3, -0.8}})
	y := tensor.FromRows([][]float64{{1, 0, 0}, {0, 0, 1}})
	loss := &SoftmaxCrossEntropy{}
	net.ZeroGrad()
	pred := net.Forward(x, true)
	net.Backward(loss.Grad(nil, pred, y))
	const h = 1e-6
	for pi, p := range net.Params() {
		for k := 0; k < len(p.Value.Data); k += 3 { // sample every third weight
			orig := p.Value.Data[k]
			p.Value.Data[k] = orig + h
			up := loss.Value(net.Forward(x, false), y)
			p.Value.Data[k] = orig - h
			down := loss.Value(net.Forward(x, false), y)
			p.Value.Data[k] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(numeric-p.Grad.Data[k]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("xent param %d[%d]: analytic %g numeric %g", pi, k, p.Grad.Data[k], numeric)
			}
		}
	}
}

func TestSoftmaxRowNormalizes(t *testing.T) {
	p := softmaxRow([]float64{1, 2, 3, 1000})
	sum := 0.0
	for _, v := range p {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("softmax produced %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %g", sum)
	}
	if p[3] < 0.99 {
		t.Fatal("softmax should concentrate on large logit")
	}
}

func TestFitLearnsLinearFunction(t *testing.T) {
	rng := xrand.New(31)
	const n = 400
	x := tensor.NewMatrix(n, 2)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.Range(-1, 1), rng.Range(-1, 1)
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, 2*a-3*b+0.5)
	}
	net := NewMLP(rng, Tanh, 0, 2, 16, 1)
	hist, err := net.Fit(x, y, TrainConfig{Epochs: 300, BatchSize: 32, Optimizer: NewAdam(0.01), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	final := hist.TrainLoss[len(hist.TrainLoss)-1]
	if final > 1e-3 {
		t.Fatalf("final loss %g, network failed to learn linear map", final)
	}
	pred := net.Predict([]float64{0.3, -0.2})
	want := 2*0.3 - 3*(-0.2) + 0.5
	if math.Abs(pred[0]-want) > 0.05 {
		t.Fatalf("prediction %g want %g", pred[0], want)
	}
}

func TestFitLearnsNonlinearFunction(t *testing.T) {
	rng := xrand.New(37)
	const n = 600
	x := tensor.NewMatrix(n, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		v := rng.Range(-2, 2)
		x.Set(i, 0, v)
		y.Set(i, 0, math.Sin(v))
	}
	net := NewMLP(rng, Tanh, 0, 1, 24, 24, 1)
	if _, err := net.Fit(x, y, TrainConfig{Epochs: 400, BatchSize: 64, Optimizer: NewAdam(0.01), Seed: 2}); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, v := range []float64{-1.5, -0.7, 0, 0.9, 1.8} {
		p := net.Predict([]float64{v})[0]
		if e := math.Abs(p - math.Sin(v)); e > worst {
			worst = e
		}
	}
	if worst > 0.1 {
		t.Fatalf("worst sin() error %g", worst)
	}
}

func TestEarlyStopping(t *testing.T) {
	rng := xrand.New(41)
	const n = 200
	x := tensor.NewMatrix(n, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		v := rng.Range(-1, 1)
		x.Set(i, 0, v)
		y.Set(i, 0, v)
	}
	net := NewMLP(rng, Tanh, 0, 1, 8, 1)
	hist, err := net.Fit(x, y, TrainConfig{
		Epochs: 5000, BatchSize: 32, Optimizer: NewAdam(0.01),
		ValFrac: 0.25, Patience: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Stopped < 0 {
		t.Fatal("expected early stopping to trigger on a trivially learnable task")
	}
	if len(hist.ValLoss) == 0 {
		t.Fatal("validation loss history empty")
	}
}

func TestFitErrorsOnMismatchedRows(t *testing.T) {
	rng := xrand.New(43)
	net := NewMLP(rng, Tanh, 0, 1, 4, 1)
	_, err := net.Fit(tensor.NewMatrix(3, 1), tensor.NewMatrix(4, 1), TrainConfig{Epochs: 1})
	if err == nil {
		t.Fatal("mismatched rows should error")
	}
}

func TestFitErrorsOnEmpty(t *testing.T) {
	rng := xrand.New(43)
	net := NewMLP(rng, Tanh, 0, 1, 4, 1)
	if _, err := net.Fit(tensor.NewMatrix(0, 1), tensor.NewMatrix(0, 1), TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("empty training set should error")
	}
}

func TestFitDivergenceDetected(t *testing.T) {
	rng := xrand.New(47)
	const n = 64
	x := tensor.NewMatrix(n, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Range(-100, 100))
		y.Set(i, 0, rng.Range(-100, 100))
	}
	net := NewMLP(rng, ReLU, 0, 1, 16, 1)
	// Absurd learning rate to force divergence.
	_, err := net.Fit(x, y, TrainConfig{Epochs: 200, BatchSize: 8, Optimizer: NewSGD(1e6, 0.9), Seed: 4})
	if err == nil {
		t.Fatal("expected ErrDiverged with lr=1e6")
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(0.5)
	x := tensor.FromRows([][]float64{{1, 2, 3}})
	out := d.Forward(x, false, nil)
	if !tensor.Equal(out, x, 0) {
		t.Fatal("dropout in eval mode should be identity")
	}
}

func TestDropoutTrainingMaskStatistics(t *testing.T) {
	rng := xrand.New(53)
	d := NewDropout(0.3)
	x := tensor.NewMatrix(1, 10000)
	x.Fill(1)
	out := d.Forward(x, true, rng)
	zeros := 0
	sum := 0.0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	frac := float64(zeros) / float64(len(out.Data))
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("dropped fraction %g want ~0.3", frac)
	}
	// Inverted dropout keeps the expectation.
	if mean := sum / float64(len(out.Data)); math.Abs(mean-1) > 0.05 {
		t.Fatalf("post-dropout mean %g want ~1", mean)
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	rng := xrand.New(59)
	d := NewDropout(0.5)
	x := tensor.NewMatrix(1, 100)
	x.Fill(1)
	out := d.Forward(x, true, rng)
	g := tensor.NewMatrix(1, 100)
	g.Fill(1)
	back := d.Backward(g)
	for i := range out.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("backward mask inconsistent with forward mask")
		}
	}
}

func TestDropoutInvalidP(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDropout(%g) did not panic", p)
				}
			}()
			NewDropout(p)
		}()
	}
}

func TestPredictMCUncertainty(t *testing.T) {
	rng := xrand.New(61)
	net := NewMLP(rng, Tanh, 0.2, 2, 32, 1)
	mean, std := net.PredictMC([]float64{0.5, 0.5}, 50)
	if len(mean) != 1 || len(std) != 1 {
		t.Fatalf("bad MC output lengths %d %d", len(mean), len(std))
	}
	if std[0] <= 0 {
		t.Fatal("MC dropout should produce nonzero predictive std")
	}
	// Without dropout the std must be exactly zero.
	det := NewMLP(rng, Tanh, 0, 2, 32, 1)
	_, std0 := det.PredictMC([]float64{0.5, 0.5}, 10)
	if std0[0] != 0 {
		t.Fatalf("deterministic net MC std = %g want 0", std0[0])
	}
}

func TestEnsemblePredictSpread(t *testing.T) {
	rng := xrand.New(67)
	e := NewEnsemble(5, rng, func(r *xrand.Rand) *Network {
		return NewMLP(r, Tanh, 0, 1, 8, 1)
	})
	mean, std := e.Predict([]float64{0.3})
	if len(mean) != 1 {
		t.Fatal("bad ensemble output")
	}
	if std[0] <= 0 {
		t.Fatal("untrained ensemble members should disagree")
	}
}

func TestEnsembleFitReducesSpread(t *testing.T) {
	rng := xrand.New(71)
	const n = 300
	x := tensor.NewMatrix(n, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		v := rng.Range(-1, 1)
		x.Set(i, 0, v)
		y.Set(i, 0, 3*v)
	}
	e := NewEnsemble(3, rng, func(r *xrand.Rand) *Network {
		return NewMLP(r, Tanh, 0, 1, 12, 1)
	})
	_, before := e.Predict([]float64{0.5})
	if err := e.Fit(x, y, TrainConfig{Epochs: 200, BatchSize: 32, Optimizer: NewAdam(0.01)}); err != nil {
		t.Fatal(err)
	}
	mean, after := e.Predict([]float64{0.5})
	if math.Abs(mean[0]-1.5) > 0.1 {
		t.Fatalf("ensemble mean %g want ~1.5", mean[0])
	}
	if after[0] >= before[0] {
		t.Fatalf("training should shrink ensemble spread: before %g after %g", before[0], after[0])
	}
}

func TestScalerRoundTrip(t *testing.T) {
	rng := xrand.New(73)
	x := tensor.NewMatrix(200, 3)
	for i := range x.Data {
		x.Data[i] = rng.Normal(5, 7)
	}
	s := FitScaler(x)
	z := s.Transform(x)
	for j := 0; j < 3; j++ {
		col := make([]float64, z.Rows)
		for i := 0; i < z.Rows; i++ {
			col[i] = z.At(i, j)
		}
		if m := stats.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("standardized column %d mean %g", j, m)
		}
	}
	v := []float64{1.5, -2, 0.25}
	back := s.Inverse(s.TransformVec(v))
	for j := range v {
		if math.Abs(back[j]-v[j]) > 1e-9 {
			t.Fatalf("scaler round trip failed at %d: %g vs %g", j, back[j], v[j])
		}
	}
}

func TestScalerConstantColumn(t *testing.T) {
	x := tensor.FromRows([][]float64{{1, 5}, {2, 5}, {3, 5}})
	s := FitScaler(x)
	z := s.Transform(x)
	for i := 0; i < 3; i++ {
		if math.IsNaN(z.At(i, 1)) || math.IsInf(z.At(i, 1), 0) {
			t.Fatal("constant column produced non-finite standardization")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := xrand.New(79)
	net := NewMLP(rng, Tanh, 0.1, 4, 10, 3)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, xrand.New(80))
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.1, -0.5, 0.3, 0.9}
	a := net.Predict(in)
	b := restored.Predict(in)
	for j := range a {
		if math.Abs(a[j]-b[j]) > 1e-12 {
			t.Fatalf("restored prediction differs: %g vs %g", a[j], b[j])
		}
	}
	if restored.NumParams() != net.NumParams() {
		t.Fatal("parameter count changed across save/load")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob")), xrand.New(1)); err == nil {
		t.Fatal("loading garbage should fail")
	}
}

func TestCloneArchitecture(t *testing.T) {
	rng := xrand.New(83)
	net := NewMLP(rng, Sigmoid, 0.2, 3, 7, 2)
	clone := net.CloneArchitecture(xrand.New(84))
	if clone.NumParams() != net.NumParams() {
		t.Fatal("clone parameter count differs")
	}
	if len(clone.Layers) != len(net.Layers) {
		t.Fatal("clone layer count differs")
	}
	// Fresh init means different weights.
	same := true
	np, cp := net.Params(), clone.Params()
	for i := range np {
		for k := range np[i].Value.Data {
			if np[i].Value.Data[k] != cp[i].Value.Data[k] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("clone should have fresh weights")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	rng := xrand.New(89)
	a := NewMLP(rng, Tanh, 0, 2, 5, 1)
	b := a.CloneArchitecture(xrand.New(90))
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	in := []float64{0.4, -0.6}
	pa, pb := a.Predict(in), b.Predict(in)
	if math.Abs(pa[0]-pb[0]) > 1e-12 {
		t.Fatal("weight copy did not reproduce predictions")
	}
	// Mismatched architectures must error.
	c := NewMLP(xrand.New(91), Tanh, 0, 2, 6, 1)
	if err := c.CopyWeightsFrom(a); err == nil {
		t.Fatal("mismatched CopyWeightsFrom should error")
	}
}

func TestNumParamsMatchesArchitecture(t *testing.T) {
	rng := xrand.New(97)
	// The paper's autotuning net: 6 -> 30 -> 48 -> 3 (§III-D).
	net := NewMLP(rng, Tanh, 0, 6, 30, 48, 3)
	want := 6*30 + 30 + 30*48 + 48 + 48*3 + 3
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d want %d", got, want)
	}
}

// Property: MC-dropout mean with many passes approaches deterministic
// prediction scaled expectation (inverted dropout preserves expectation).
func TestMCDropoutMeanNearDeterministicQuick(t *testing.T) {
	rng := xrand.New(101)
	net := NewMLP(rng, Identity, 0.1, 2, 8, 1)
	if err := quick.Check(func(aRaw, bRaw uint8) bool {
		a := float64(aRaw)/255 - 0.5
		b := float64(bRaw)/255 - 0.5
		det := net.Predict([]float64{a, b})[0]
		mean, _ := net.PredictMC([]float64{a, b}, 800)
		// Linear net: expectation of dropout forward equals deterministic.
		return math.Abs(mean[0]-det) < 0.15*(1+math.Abs(det))
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSGDMomentumStep(t *testing.T) {
	w := tensor.FromRows([][]float64{{1}})
	g := tensor.FromRows([][]float64{{2}})
	opt := NewSGD(0.1, 0.5)
	params := []ParamPair{{w, g}}
	opt.Step(params) // v = -0.2, w = 0.8
	if math.Abs(w.At(0, 0)-0.8) > 1e-12 {
		t.Fatalf("after step1 w=%g want 0.8", w.At(0, 0))
	}
	opt.Step(params) // v = 0.5*(-0.2) - 0.2 = -0.3, w = 0.5
	if math.Abs(w.At(0, 0)-0.5) > 1e-12 {
		t.Fatalf("after step2 w=%g want 0.5", w.At(0, 0))
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 by hand-feeding gradients.
	w := tensor.FromRows([][]float64{{0}})
	g := tensor.FromRows([][]float64{{0}})
	opt := NewAdam(0.1)
	params := []ParamPair{{w, g}}
	for i := 0; i < 500; i++ {
		g.Set(0, 0, 2*(w.At(0, 0)-3))
		opt.Step(params)
	}
	if math.Abs(w.At(0, 0)-3) > 0.01 {
		t.Fatalf("Adam converged to %g want 3", w.At(0, 0))
	}
}

func BenchmarkForward32x32(b *testing.B) {
	rng := xrand.New(1)
	net := NewMLP(rng, Tanh, 0, 5, 32, 32, 3)
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(x)
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := xrand.New(2)
	const n = 256
	x := tensor.NewMatrix(n, 5)
	y := tensor.NewMatrix(n, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	net := NewMLP(rng, Tanh, 0, 5, 30, 48, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = net.Fit(x, y, TrainConfig{Epochs: 1, BatchSize: 32, Optimizer: NewAdam(1e-3)})
	}
}
