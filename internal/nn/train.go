package nn

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	Step(params []ParamPair)
	Name() string
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []*tensor.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer. The velocity update and parameter step are
// fused into one pass per parameter matrix over the preallocated velocity
// buffers (the same treatment Adam.Step got); after the first call, which
// allocates those buffers, Step performs zero heap allocations.
func (s *SGD) Step(params []ParamPair) {
	if s.velocity == nil {
		s.velocity = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.NewMatrix(p.Value.Rows, p.Value.Cols)
		}
	}
	for i, p := range params {
		sgdStep(p.Value.Data, p.Grad.Data, s.velocity[i].Data, s.LR, s.Momentum)
	}
}

// sgdStep applies one fused momentum-SGD update in a single sweep. The
// momentum-free case skips the velocity traffic entirely: v stays zero
// and the update degenerates to a plain axpy, halving the memory streams.
func sgdStep(val, grad, v []float64, lr, momentum float64) {
	grad = grad[:len(val)] // bounds-check elimination hints
	if momentum == 0 {
		for k := range val {
			val[k] -= lr * grad[k]
		}
		return
	}
	v = v[:len(val)]
	for k := range val {
		vk := momentum*v[k] - lr*grad[k]
		v[k] = vk
		val[k] += vk
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  []*tensor.Matrix
}

// NewAdam returns an Adam optimizer with standard defaults for any zero
// hyperparameter.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer. The moment updates and bias-corrected
// parameter step are fused into one pass per parameter matrix over the
// preallocated m/v buffers; after the first call (which allocates those
// buffers) Step performs zero heap allocations.
func (a *Adam) Step(params []ParamPair) {
	if a.m == nil {
		a.m = make([]*tensor.Matrix, len(params))
		a.v = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			a.m[i] = tensor.NewMatrix(p.Value.Rows, p.Value.Cols)
			a.v[i] = tensor.NewMatrix(p.Value.Rows, p.Value.Cols)
		}
	}
	a.t++
	invC1 := 1 / (1 - math.Pow(a.Beta1, float64(a.t)))
	invC2 := 1 / (1 - math.Pow(a.Beta2, float64(a.t)))
	for i, p := range params {
		adamStep(p.Value.Data, p.Grad.Data, a.m[i].Data, a.v[i].Data,
			a.LR, a.Beta1, a.Beta2, a.Eps, invC1, invC2)
	}
}

// adamStep applies one fused Adam update: moment EMAs, bias correction and
// the parameter step in a single sweep. Hoisting the per-step constants and
// replacing the two bias-correction divisions with multiplications keeps
// the loop at one sqrt and one division per element.
func adamStep(val, grad, m, v []float64, lr, beta1, beta2, eps, invC1, invC2 float64) {
	grad = grad[:len(val)] // bounds-check elimination hints
	m = m[:len(val)]
	v = v[:len(val)]
	g1, g2 := 1-beta1, 1-beta2
	for k := range val {
		g := grad[k]
		mk := beta1*m[k] + g1*g
		vk := beta2*v[k] + g2*g*g
		m[k] = mk
		v[k] = vk
		val[k] -= lr * (mk * invC1) / (math.Sqrt(vk*invC2) + eps)
	}
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Loss      Loss
	// ValFrac holds out this fraction of the data for validation-based
	// early stopping (0 disables).
	ValFrac float64
	// Patience is the number of epochs without validation improvement
	// tolerated before stopping early (0 disables early stopping).
	Patience int
	// Verbose, if non-nil, receives one line per epoch.
	Verbose func(epoch int, trainLoss, valLoss float64)
	// Seed controls shuffling; independent of network init.
	Seed uint64
}

// History records per-epoch losses from a Fit call.
type History struct {
	TrainLoss []float64
	ValLoss   []float64 // empty when ValFrac == 0
	Stopped   int       // epoch at which early stopping triggered, or -1
}

// ErrDiverged is returned when training produced non-finite parameters.
var ErrDiverged = errors.New("nn: training diverged (non-finite loss or parameters)")

// Fit trains the network on inputs x and targets y (row-aligned) and
// returns the loss history. It shuffles each epoch, supports minibatches,
// optional validation split and early stopping, and fails fast with
// ErrDiverged if the loss or any parameter becomes non-finite.
func (n *Network) Fit(x, y *tensor.Matrix, cfg TrainConfig) (*History, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("nn: x has %d rows, y has %d", x.Rows, y.Rows)
	}
	if x.Rows == 0 {
		return nil, errors.New("nn: empty training set")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(1e-3)
	}
	if cfg.Loss == nil {
		cfg.Loss = MSE{}
	}
	rng := xrand.New(cfg.Seed + 0x5eed)

	// Validation split.
	nVal := 0
	if cfg.ValFrac > 0 && cfg.ValFrac < 1 {
		nVal = int(cfg.ValFrac * float64(x.Rows))
	}
	perm := rng.Perm(x.Rows)
	trainIdx := perm[nVal:]
	valIdx := perm[:nVal]

	hist := &History{Stopped: -1}
	bestVal := math.Inf(1)
	sinceBest := 0

	// All per-step workspaces are allocated once and reshaped per batch
	// (tail batches shrink the row count without reallocating), so the
	// steady-state epoch loop performs no heap allocation.
	maxBatch := cfg.BatchSize
	if maxBatch > len(trainIdx) {
		maxBatch = len(trainIdx)
	}
	xb := tensor.NewMatrix(maxBatch, x.Cols)
	yb := tensor.NewMatrix(maxBatch, y.Cols)
	gb := tensor.NewMatrix(maxBatch, y.Cols)
	params := n.Params()
	var vx, vy *tensor.Matrix
	if nVal > 0 {
		vx = tensor.NewMatrix(nVal, x.Cols)
		vy = tensor.NewMatrix(nVal, y.Cols)
		for bi, idx := range valIdx {
			copy(vx.Row(bi), x.Row(idx))
			copy(vy.Row(bi), y.Row(idx))
		}
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
		epochLoss := 0.0
		batches := 0
		for start := 0; start < len(trainIdx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(trainIdx) {
				end = len(trainIdx)
			}
			bs := end - start
			bx := xb.Reshape(bs, x.Cols)
			by := yb.Reshape(bs, y.Cols)
			for bi, idx := range trainIdx[start:end] {
				copy(bx.Row(bi), x.Row(idx))
				copy(by.Row(bi), y.Row(idx))
			}
			for _, p := range params {
				p.Grad.Zero()
			}
			pred := n.Forward(bx, true)
			loss := cfg.Loss.Value(pred, by)
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				return hist, ErrDiverged
			}
			epochLoss += loss
			batches++
			n.Backward(cfg.Loss.Grad(gb.Reshape(bs, y.Cols), pred, by))
			cfg.Optimizer.Step(params)
			// Cooperative backgrounding: on oversubscribed machines a
			// refit otherwise monopolizes a core for tens of
			// milliseconds, which is exactly the serving stall the
			// double-buffered wrappers exist to avoid. One scheduler
			// yield per minibatch (~100ns against a ~100µs step) caps
			// the latency a concurrent server sees at one batch step.
			runtime.Gosched()
		}
		epochLoss /= float64(batches)
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)

		valLoss := math.NaN()
		if nVal > 0 {
			valLoss = cfg.Loss.Value(n.Forward(vx, false), vy)
			hist.ValLoss = append(hist.ValLoss, valLoss)
		}
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, epochLoss, valLoss)
		}
		if nVal > 0 && cfg.Patience > 0 {
			if valLoss < bestVal-1e-12 {
				bestVal = valLoss
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= cfg.Patience {
					hist.Stopped = epoch
					break
				}
			}
		}
	}
	for _, p := range n.Params() {
		if tensor.HasNaN(p.Value) {
			return hist, ErrDiverged
		}
	}
	return hist, nil
}

// Ensemble is a bag of independently initialized and trained networks whose
// prediction spread provides the model-averaging UQ of §III-B ("averaging
// trained instances of an originally complex model").
type Ensemble struct {
	Members []*Network
}

// NewEnsemble builds size networks with the same architecture via build,
// which receives a distinct rng per member.
func NewEnsemble(size int, rng *xrand.Rand, build func(r *xrand.Rand) *Network) *Ensemble {
	if size < 1 {
		panic("nn: ensemble needs at least one member")
	}
	e := &Ensemble{}
	for i := 0; i < size; i++ {
		e.Members = append(e.Members, build(rng.Split()))
	}
	return e
}

// Fit trains every member on the same data (each with a different shuffle
// seed), returning the first error encountered.
func (e *Ensemble) Fit(x, y *tensor.Matrix, cfg TrainConfig) error {
	for i, m := range e.Members {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e37
		c.Optimizer = nil // fresh optimizer state per member
		if cfg.Optimizer != nil {
			switch opt := cfg.Optimizer.(type) {
			case *Adam:
				c.Optimizer = NewAdam(opt.LR)
			case *SGD:
				c.Optimizer = NewSGD(opt.LR, opt.Momentum)
			}
		}
		if _, err := m.Fit(x, y, c); err != nil {
			return fmt.Errorf("nn: ensemble member %d: %w", i, err)
		}
	}
	return nil
}

// Predict returns the ensemble predictive mean and standard deviation.
func (e *Ensemble) Predict(x []float64) (mean, std []float64) {
	var sum, sumSq []float64
	for _, m := range e.Members {
		p := m.Predict(x)
		if sum == nil {
			sum = make([]float64, len(p))
			sumSq = make([]float64, len(p))
		}
		for j, v := range p {
			sum[j] += v
			sumSq[j] += v * v
		}
	}
	k := float64(len(e.Members))
	mean = make([]float64, len(sum))
	std = make([]float64, len(sum))
	for j := range sum {
		m := sum[j] / k
		mean[j] = m
		v := sumSq[j]/k - m*m
		if v < 0 {
			v = 0
		}
		std[j] = math.Sqrt(v)
	}
	return mean, std
}

// Scaler standardizes features to zero mean and unit variance, the
// preprocessing every exemplar surrogate applies before training.
type Scaler struct {
	Mean, Std []float64
}

// FitScaler computes per-column statistics of x.
func FitScaler(x *tensor.Matrix) *Scaler {
	s := &Scaler{Mean: make([]float64, x.Cols), Std: make([]float64, x.Cols)}
	for j := 0; j < x.Cols; j++ {
		sum := 0.0
		for i := 0; i < x.Rows; i++ {
			sum += x.At(i, j)
		}
		m := sum / float64(x.Rows)
		s.Mean[j] = m
		ss := 0.0
		for i := 0; i < x.Rows; i++ {
			d := x.At(i, j) - m
			ss += d * d
		}
		std := math.Sqrt(ss / float64(x.Rows))
		if std < 1e-12 {
			std = 1
		}
		s.Std[j] = std
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Scaler) Transform(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != len(s.Mean) {
		panic("nn: scaler dimension mismatch")
	}
	out := x.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// TransformInto standardizes x into dst (reshaped to x's shape; must be
// non-nil) and returns dst. dst may alias x for in-place work. The
// allocation-free form of Transform used by pooled serving paths.
func (s *Scaler) TransformInto(dst, x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != len(s.Mean) {
		panic("nn: scaler dimension mismatch")
	}
	dst.Reshape(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		out := dst.Row(i)
		for j := range src {
			out[j] = (src[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return dst
}

// TransformVec standardizes a single feature vector.
func (s *Scaler) TransformVec(x []float64) []float64 {
	return s.TransformVecInto(make([]float64, len(x)), x)
}

// TransformVecInto standardizes x into dst (same length) and returns dst.
// dst may alias x for in-place standardization.
func (s *Scaler) TransformVecInto(dst, x []float64) []float64 {
	if len(x) != len(s.Mean) || len(dst) != len(x) {
		panic("nn: scaler dimension mismatch")
	}
	for j := range x {
		dst[j] = (x[j] - s.Mean[j]) / s.Std[j]
	}
	return dst
}

// Inverse maps a standardized vector back to original units.
func (s *Scaler) Inverse(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = x[j]*s.Std[j] + s.Mean[j]
	}
	return out
}

// InverseScale maps a standardized magnitude (e.g. a predictive std) for
// output j back to original units without re-centering.
func (s *Scaler) InverseScale(j int, v float64) float64 { return v * s.Std[j] }
