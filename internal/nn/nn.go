// Package nn is a from-scratch feed-forward neural network library: the ML
// subsystem of the Learning Everywhere framework. The paper's exemplars use
// small dense networks (e.g. the 6→30→48→3 autotuning net of §III-D and the
// D=5 density surrogate of §II-C1) built with Keras/TensorFlow; this package
// reproduces that capability on the standard library alone, including the
// dropout machinery the paper's UQ discussion (§III-B) depends on:
// MC-dropout predictive distributions and deep ensembles.
package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Activation is a differentiable element-wise nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Tanh
	Sigmoid
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivFromOutput returns f'(x) expressed in terms of y = f(x), which all
// supported activations admit; this avoids storing pre-activations.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// Layer is one differentiable stage of a network. Forward consumes a batch
// (rows = samples) and Backward consumes the gradient of the loss with
// respect to the layer output, returning the gradient with respect to the
// layer input and accumulating parameter gradients internally.
type Layer interface {
	Forward(x *tensor.Matrix, training bool, rng *xrand.Rand) *tensor.Matrix
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	// Params returns parameter/gradient matrix pairs (may be empty).
	Params() []ParamPair
}

// ParamPair couples a parameter matrix with its gradient accumulator.
type ParamPair struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// Dense is a fully connected layer: out = act(x*W + b).
type Dense struct {
	In, Out int
	Act     Activation

	W, B   *tensor.Matrix // B is 1 x Out
	GW, GB *tensor.Matrix

	lastIn  *tensor.Matrix // cached input batch
	lastOut *tensor.Matrix // cached post-activation output
}

// NewDense constructs a dense layer with Glorot-uniform initialized weights.
func NewDense(in, out int, act Activation, rng *xrand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W:  tensor.NewMatrix(in, out),
		B:  tensor.NewMatrix(1, out),
		GW: tensor.NewMatrix(in, out),
		GB: tensor.NewMatrix(1, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W.Data {
		d.W.Data[i] = rng.Range(-limit, limit)
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix, training bool, _ *xrand.Rand) *tensor.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.In, x.Cols))
	}
	z := tensor.MatMul(x, d.W)
	for i := 0; i < z.Rows; i++ {
		row := z.Row(i)
		for j := range row {
			row[j] = d.Act.apply(row[j] + d.B.Data[j])
		}
	}
	if training {
		d.lastIn = x
		d.lastOut = z
	}
	return z
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.lastIn == nil {
		panic("nn: Backward before Forward(training=true)")
	}
	// delta = gradOut ⊙ act'(out)
	delta := tensor.NewMatrix(gradOut.Rows, gradOut.Cols)
	for i := range delta.Data {
		delta.Data[i] = gradOut.Data[i] * d.Act.derivFromOutput(d.lastOut.Data[i])
	}
	// Accumulate parameter gradients (mean over batch applied by loss).
	gw := tensor.MatMul(d.lastIn.T(), delta)
	tensor.Add(d.GW, d.GW, gw)
	for i := 0; i < delta.Rows; i++ {
		row := delta.Row(i)
		for j := range row {
			d.GB.Data[j] += row[j]
		}
	}
	return tensor.MatMul(delta, d.W.T())
}

// Params implements Layer.
func (d *Dense) Params() []ParamPair {
	return []ParamPair{{d.W, d.GW}, {d.B, d.GB}}
}

// Dropout zeroes each input unit with probability P during training (and
// during MC-dropout inference), scaling survivors by 1/(1-P) (inverted
// dropout) so expected activations match eval mode.
type Dropout struct {
	P    float64
	mask []float64
}

// NewDropout returns a dropout layer with drop probability p in [0,1).
func NewDropout(p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{P: p}
}

// Forward implements Layer.
func (dr *Dropout) Forward(x *tensor.Matrix, training bool, rng *xrand.Rand) *tensor.Matrix {
	if !training || dr.P == 0 {
		dr.mask = nil
		return x
	}
	if rng == nil {
		panic("nn: dropout in training mode requires rng")
	}
	out := tensor.NewMatrix(x.Rows, x.Cols)
	dr.mask = make([]float64, len(x.Data))
	keep := 1 - dr.P
	inv := 1 / keep
	for i, v := range x.Data {
		if rng.Float64() < keep {
			dr.mask[i] = inv
			out.Data[i] = v * inv
		}
	}
	return out
}

// Backward implements Layer.
func (dr *Dropout) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if dr.mask == nil {
		return gradOut
	}
	out := tensor.NewMatrix(gradOut.Rows, gradOut.Cols)
	for i, g := range gradOut.Data {
		out.Data[i] = g * dr.mask[i]
	}
	return out
}

// Params implements Layer.
func (dr *Dropout) Params() []ParamPair { return nil }

// Loss scores a prediction batch against targets and produces the gradient
// of the mean loss with respect to the predictions.
type Loss interface {
	// Value returns the mean loss over the batch.
	Value(pred, target *tensor.Matrix) float64
	// Grad returns d(meanLoss)/d(pred).
	Grad(pred, target *tensor.Matrix) *tensor.Matrix
	Name() string
}

// MSE is mean squared error, averaged over batch and outputs.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Value implements Loss.
func (MSE) Value(pred, target *tensor.Matrix) float64 {
	s := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		s += d * d
	}
	return s / float64(len(pred.Data))
}

// Grad implements Loss.
func (MSE) Grad(pred, target *tensor.Matrix) *tensor.Matrix {
	g := tensor.NewMatrix(pred.Rows, pred.Cols)
	scale := 2 / float64(len(pred.Data))
	for i := range pred.Data {
		g.Data[i] = scale * (pred.Data[i] - target.Data[i])
	}
	return g
}

// SoftmaxCrossEntropy applies a softmax over each output row and scores it
// against one-hot (or soft) target rows with cross entropy.
type SoftmaxCrossEntropy struct{}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

func softmaxRow(row []float64) []float64 {
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	out := make([]float64, len(row))
	sum := 0.0
	for i, v := range row {
		out[i] = math.Exp(v - m)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Value implements Loss.
func (SoftmaxCrossEntropy) Value(pred, target *tensor.Matrix) float64 {
	s := 0.0
	for i := 0; i < pred.Rows; i++ {
		p := softmaxRow(pred.Row(i))
		trow := target.Row(i)
		for j := range p {
			if trow[j] > 0 {
				s -= trow[j] * math.Log(math.Max(p[j], 1e-15))
			}
		}
	}
	return s / float64(pred.Rows)
}

// Grad implements Loss.
func (SoftmaxCrossEntropy) Grad(pred, target *tensor.Matrix) *tensor.Matrix {
	g := tensor.NewMatrix(pred.Rows, pred.Cols)
	inv := 1 / float64(pred.Rows)
	for i := 0; i < pred.Rows; i++ {
		p := softmaxRow(pred.Row(i))
		trow := target.Row(i)
		grow := g.Row(i)
		for j := range p {
			grow[j] = (p[j] - trow[j]) * inv
		}
	}
	return g
}

// Network is an ordered stack of layers.
type Network struct {
	Layers []Layer
	rng    *xrand.Rand
}

// NewNetwork builds a network around the given layers; rng drives dropout
// masks and any stochastic layer behaviour.
func NewNetwork(rng *xrand.Rand, layers ...Layer) *Network {
	return &Network{Layers: layers, rng: rng}
}

// NewMLP is a convenience constructor: a fully connected net with the given
// layer widths (e.g. 6,30,48,3), hidden activation act, Identity output,
// and optional dropout after each hidden layer (dropP == 0 disables).
func NewMLP(rng *xrand.Rand, act Activation, dropP float64, widths ...int) *Network {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	var layers []Layer
	for i := 0; i < len(widths)-1; i++ {
		last := i == len(widths)-2
		a := act
		if last {
			a = Identity
		}
		layers = append(layers, NewDense(widths[i], widths[i+1], a, rng))
		if !last && dropP > 0 {
			layers = append(layers, NewDropout(dropP))
		}
	}
	return NewNetwork(rng, layers...)
}

// Forward runs a batch through the network. training toggles dropout and
// gradient caching.
func (n *Network) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	h := x
	for _, l := range n.Layers {
		h = l.Forward(h, training, n.rng)
	}
	return h
}

// Backward propagates the loss gradient through all layers, accumulating
// parameter gradients.
func (n *Network) Backward(gradOut *tensor.Matrix) {
	g := gradOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// ZeroGrad clears all accumulated parameter gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			p.Grad.Zero()
		}
	}
}

// Params returns every parameter pair in the network, in layer order.
func (n *Network) Params() []ParamPair {
	var out []ParamPair
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	c := 0
	for _, p := range n.Params() {
		c += len(p.Value.Data)
	}
	return c
}

// Predict runs a single deterministic forward pass (dropout disabled) on
// one input vector.
func (n *Network) Predict(x []float64) []float64 {
	in := tensor.FromRows([][]float64{x})
	out := n.Forward(in, false)
	res := make([]float64, out.Cols)
	copy(res, out.Row(0))
	return res
}

// PredictBatch runs a deterministic forward pass on a batch.
func (n *Network) PredictBatch(x *tensor.Matrix) *tensor.Matrix {
	return n.Forward(x, false)
}

// PredictMC performs passes stochastic forward evaluations with dropout
// active (MC dropout, Gal & Ghahramani as cited in §III-B) and returns the
// predictive mean and standard deviation per output. With no dropout
// layers the std collapses to zero.
func (n *Network) PredictMC(x []float64, passes int) (mean, std []float64) {
	if passes < 1 {
		panic("nn: PredictMC needs at least one pass")
	}
	in := tensor.FromRows([][]float64{x})
	var sum, sumSq []float64
	for p := 0; p < passes; p++ {
		out := n.forwardStochastic(in)
		row := out.Row(0)
		if sum == nil {
			sum = make([]float64, len(row))
			sumSq = make([]float64, len(row))
		}
		for j, v := range row {
			sum[j] += v
			sumSq[j] += v * v
		}
	}
	mean = make([]float64, len(sum))
	std = make([]float64, len(sum))
	for j := range sum {
		m := sum[j] / float64(passes)
		mean[j] = m
		v := sumSq[j]/float64(passes) - m*m
		if v < 0 {
			v = 0
		}
		std[j] = math.Sqrt(v)
	}
	return mean, std
}

// forwardStochastic runs a forward pass with dropout sampling active but
// without caching activations for backprop (dense layers run in eval mode;
// dropout layers in training mode).
func (n *Network) forwardStochastic(x *tensor.Matrix) *tensor.Matrix {
	h := x
	for _, l := range n.Layers {
		if _, isDrop := l.(*Dropout); isDrop {
			h = l.Forward(h, true, n.rng)
		} else {
			h = l.Forward(h, false, n.rng)
		}
	}
	return h
}
