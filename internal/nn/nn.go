// Package nn is a from-scratch feed-forward neural network library: the ML
// subsystem of the Learning Everywhere framework. The paper's exemplars use
// small dense networks (e.g. the 6→30→48→3 autotuning net of §III-D and the
// D=5 density surrogate of §II-C1) built with Keras/TensorFlow; this package
// reproduces that capability on the standard library alone, including the
// dropout machinery the paper's UQ discussion (§III-B) depends on:
// MC-dropout predictive distributions and deep ensembles.
package nn

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Activation is a differentiable element-wise nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Tanh
	Sigmoid
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivFromOutput returns f'(x) expressed in terms of y = f(x), which all
// supported activations admit; this avoids storing pre-activations.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// Layer is one differentiable stage of a network. Forward consumes a batch
// (rows = samples) and Backward consumes the gradient of the loss with
// respect to the layer output, returning the gradient with respect to the
// layer input and accumulating parameter gradients internally.
type Layer interface {
	Forward(x *tensor.Matrix, training bool, rng *xrand.Rand) *tensor.Matrix
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	// Params returns parameter/gradient matrix pairs (may be empty).
	Params() []ParamPair
}

// ParamPair couples a parameter matrix with its gradient accumulator.
type ParamPair struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// Dense is a fully connected layer: out = act(x*W + b).
//
// The layer owns all scratch matrices the training hot path needs (input
// copy, pre/post-activation batch, delta, gradient workspaces), so after
// the first step of a given batch size, Forward(training=true)+Backward
// performs zero heap allocations. The input batch is copied into lastIn
// rather than aliased, so callers may reuse (and overwrite) their batch
// buffer between steps.
type Dense struct {
	In, Out int
	Act     Activation

	W, B   *tensor.Matrix // B is 1 x Out
	GW, GB *tensor.Matrix

	lastIn *tensor.Matrix // owned copy of the input batch
	z      *tensor.Matrix // owned post-activation output
	delta  *tensor.Matrix // owned gradOut ⊙ act' workspace
	gw     *tensor.Matrix // owned per-step weight-gradient workspace
	gradIn *tensor.Matrix // owned input-gradient output
	cached bool           // true once Forward(training=true) has run
}

// reuse returns *m reshaped to rows x cols, allocating only on first use
// or growth. The returned matrix's contents are unspecified.
func reuse(m **tensor.Matrix, rows, cols int) *tensor.Matrix {
	if *m == nil {
		*m = tensor.NewMatrix(rows, cols)
		return *m
	}
	return (*m).Reshape(rows, cols)
}

// NewDense constructs a dense layer with Glorot-uniform initialized weights.
func NewDense(in, out int, act Activation, rng *xrand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W:  tensor.NewMatrix(in, out),
		B:  tensor.NewMatrix(1, out),
		GW: tensor.NewMatrix(in, out),
		GB: tensor.NewMatrix(1, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W.Data {
		d.W.Data[i] = rng.Range(-limit, limit)
	}
	return d
}

// Forward implements Layer. In training mode the result matrix is owned
// by the layer and valid until its next training Forward; in eval mode a
// fresh matrix is returned.
func (d *Dense) Forward(x *tensor.Matrix, training bool, _ *xrand.Rand) *tensor.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.In, x.Cols))
	}
	if !training {
		z := tensor.MatMul(x, d.W)
		d.biasAct(z)
		return z
	}
	in := reuse(&d.lastIn, x.Rows, d.In)
	copy(in.Data, x.Data)
	z := reuse(&d.z, x.Rows, d.Out)
	tensor.MatMulInto(z, in, d.W)
	d.biasAct(z)
	d.cached = true
	return z
}

// biasAct applies the bias and activation to every row of z in place.
func (d *Dense) biasAct(z *tensor.Matrix) {
	for i := 0; i < z.Rows; i++ {
		row := z.Row(i)
		for j := range row {
			row[j] = d.Act.apply(row[j] + d.B.Data[j])
		}
	}
}

// Backward implements Layer. The returned input-gradient matrix is owned
// by the layer and valid until its next Backward. Both gradient matmuls
// run transpose-free (MatMulATBInto / MatMulABTInto), so steady-state
// Backward allocates nothing.
func (d *Dense) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if !d.cached {
		panic("nn: Backward before Forward(training=true)")
	}
	// delta = gradOut ⊙ act'(out)
	delta := reuse(&d.delta, gradOut.Rows, gradOut.Cols)
	for i := range delta.Data {
		delta.Data[i] = gradOut.Data[i] * d.Act.derivFromOutput(d.z.Data[i])
	}
	// Accumulate parameter gradients (mean over batch applied by loss):
	// GW += lastInᵀ · delta, without materializing the transpose.
	gw := reuse(&d.gw, d.In, d.Out)
	tensor.MatMulATBInto(gw, d.lastIn, delta)
	tensor.Add(d.GW, d.GW, gw)
	for i := 0; i < delta.Rows; i++ {
		row := delta.Row(i)
		for j := range row {
			d.GB.Data[j] += row[j]
		}
	}
	// dX = delta · Wᵀ, again transpose-free.
	return tensor.MatMulABTInto(reuse(&d.gradIn, delta.Rows, d.In), delta, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []ParamPair {
	return []ParamPair{{d.W, d.GW}, {d.B, d.GB}}
}

// Dropout zeroes each input unit with probability P during training (and
// during MC-dropout inference), scaling survivors by 1/(1-P) (inverted
// dropout) so expected activations match eval mode.
type Dropout struct {
	P      float64
	mask   []float64
	active bool           // a mask is live from the last training Forward
	out    *tensor.Matrix // owned masked output
	gradIn *tensor.Matrix // owned backward output
}

// NewDropout returns a dropout layer with drop probability p in [0,1).
func NewDropout(p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{P: p}
}

// Forward implements Layer. In training mode the result is an owned
// buffer reused across steps.
func (dr *Dropout) Forward(x *tensor.Matrix, training bool, rng *xrand.Rand) *tensor.Matrix {
	if !training || dr.P == 0 {
		dr.active = false
		return x
	}
	if rng == nil {
		panic("nn: dropout in training mode requires rng")
	}
	out := reuse(&dr.out, x.Rows, x.Cols)
	if cap(dr.mask) < len(x.Data) {
		dr.mask = make([]float64, len(x.Data))
	}
	dr.mask = dr.mask[:len(x.Data)]
	dr.active = true
	dropoutSample(out.Data, x.Data, dr.mask, dr.P, rng)
	return out
}

// dropoutSample fills dst with an inverted-dropout sample of x: each
// element survives with probability 1-p scaled by 1/(1-p), else zero.
// When mask is non-nil the applied multipliers are recorded for
// backprop. This is the single home of the sampling semantics shared by
// training (Dropout.Forward) and MC inference (Predictor.forward).
func dropoutSample(dst, x, mask []float64, p float64, rng *xrand.Rand) {
	keep := 1 - p
	inv := 1 / keep
	for i, v := range x {
		m := 0.0
		if rng.Float64() < keep {
			m = inv
		}
		if mask != nil {
			mask[i] = m
		}
		dst[i] = v * m
	}
}

// Backward implements Layer.
func (dr *Dropout) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if !dr.active {
		return gradOut
	}
	out := reuse(&dr.gradIn, gradOut.Rows, gradOut.Cols)
	for i, g := range gradOut.Data {
		out.Data[i] = g * dr.mask[i]
	}
	return out
}

// Params implements Layer.
func (dr *Dropout) Params() []ParamPair { return nil }

// Loss scores a prediction batch against targets and produces the gradient
// of the mean loss with respect to the predictions.
type Loss interface {
	// Value returns the mean loss over the batch.
	Value(pred, target *tensor.Matrix) float64
	// Grad stores d(meanLoss)/d(pred) into dst and returns it. A nil dst
	// allocates; hot loops pass a reused buffer of pred's shape. dst must
	// not alias pred or target.
	Grad(dst, pred, target *tensor.Matrix) *tensor.Matrix
	Name() string
}

// MSE is mean squared error, averaged over batch and outputs.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Value implements Loss.
func (MSE) Value(pred, target *tensor.Matrix) float64 {
	s := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		s += d * d
	}
	return s / float64(len(pred.Data))
}

// Grad implements Loss.
func (MSE) Grad(dst, pred, target *tensor.Matrix) *tensor.Matrix {
	if dst == nil {
		dst = tensor.NewMatrix(pred.Rows, pred.Cols)
	}
	scale := 2 / float64(len(pred.Data))
	for i := range pred.Data {
		dst.Data[i] = scale * (pred.Data[i] - target.Data[i])
	}
	return dst
}

// SoftmaxCrossEntropy applies a softmax over each output row and scores it
// against one-hot (or soft) target rows with cross entropy. Like MSE it is
// hot-loop friendly: the per-row softmax runs through an owned scratch
// buffer, so after the first call Value and Grad allocate nothing. A
// SoftmaxCrossEntropy value must therefore not be shared across concurrent
// Fit calls; give each training loop its own (the zero value is ready).
type SoftmaxCrossEntropy struct {
	probs []float64 // owned softmax scratch row
}

// Name implements Loss.
func (*SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// scratch returns the owned n-wide softmax row, growing it on first use.
func (sx *SoftmaxCrossEntropy) scratch(n int) []float64 {
	if cap(sx.probs) < n {
		sx.probs = make([]float64, n)
	}
	return sx.probs[:n]
}

// softmaxRowInto writes softmax(row) into dst (same length) and returns it.
func softmaxRowInto(dst, row []float64) []float64 {
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	sum := 0.0
	for i, v := range row {
		dst[i] = math.Exp(v - m)
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// softmaxRow returns softmax(row) as a fresh slice.
func softmaxRow(row []float64) []float64 {
	return softmaxRowInto(make([]float64, len(row)), row)
}

// Value implements Loss.
func (sx *SoftmaxCrossEntropy) Value(pred, target *tensor.Matrix) float64 {
	s := 0.0
	buf := sx.scratch(pred.Cols)
	for i := 0; i < pred.Rows; i++ {
		p := softmaxRowInto(buf, pred.Row(i))
		trow := target.Row(i)
		for j := range p {
			if trow[j] > 0 {
				s -= trow[j] * math.Log(math.Max(p[j], 1e-15))
			}
		}
	}
	return s / float64(pred.Rows)
}

// Grad implements Loss.
func (sx *SoftmaxCrossEntropy) Grad(dst, pred, target *tensor.Matrix) *tensor.Matrix {
	if dst == nil {
		dst = tensor.NewMatrix(pred.Rows, pred.Cols)
	}
	inv := 1 / float64(pred.Rows)
	buf := sx.scratch(pred.Cols)
	for i := 0; i < pred.Rows; i++ {
		p := softmaxRowInto(buf, pred.Row(i))
		trow := target.Row(i)
		grow := dst.Row(i)
		for j := range p {
			grow[j] = (p[j] - trow[j]) * inv
		}
	}
	return dst
}

// Network is an ordered stack of layers.
//
// Training (Forward(training=true), Backward, Fit) mutates shared layer
// state and must be single-threaded. Inference through Predict,
// PredictBatch and PredictMC draws per-call workspaces from an internal
// pool and is safe for concurrent use as long as no training runs at the
// same time; callers needing exclusive reusable workspaces (zero-copy
// results) use NewPredictor directly.
type Network struct {
	Layers []Layer
	rng    *xrand.Rand

	predPool sync.Pool // *Predictor
	predOnce sync.Once // seeds predBase from rng on first use
	predBase uint64    // base seed for predictor rng streams
	predCtr  atomic.Uint64
}

// NewNetwork builds a network around the given layers; rng drives dropout
// masks and any stochastic layer behaviour.
func NewNetwork(rng *xrand.Rand, layers ...Layer) *Network {
	return &Network{Layers: layers, rng: rng}
}

// NewMLP is a convenience constructor: a fully connected net with the given
// layer widths (e.g. 6,30,48,3), hidden activation act, Identity output,
// and optional dropout after each hidden layer (dropP == 0 disables).
func NewMLP(rng *xrand.Rand, act Activation, dropP float64, widths ...int) *Network {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	var layers []Layer
	for i := 0; i < len(widths)-1; i++ {
		last := i == len(widths)-2
		a := act
		if last {
			a = Identity
		}
		layers = append(layers, NewDense(widths[i], widths[i+1], a, rng))
		if !last && dropP > 0 {
			layers = append(layers, NewDropout(dropP))
		}
	}
	return NewNetwork(rng, layers...)
}

// Forward runs a batch through the network. training toggles dropout and
// gradient caching.
func (n *Network) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	h := x
	for _, l := range n.Layers {
		h = l.Forward(h, training, n.rng)
	}
	return h
}

// Backward propagates the loss gradient through all layers, accumulating
// parameter gradients.
func (n *Network) Backward(gradOut *tensor.Matrix) {
	g := gradOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// ZeroGrad clears all accumulated parameter gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			p.Grad.Zero()
		}
	}
}

// Params returns every parameter pair in the network, in layer order.
func (n *Network) Params() []ParamPair {
	var out []ParamPair
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	c := 0
	for _, p := range n.Params() {
		c += len(p.Value.Data)
	}
	return c
}

// Predict runs a single deterministic forward pass (dropout disabled) on
// one input vector. Safe for concurrent use (no concurrent training).
func (n *Network) Predict(x []float64) []float64 {
	p := n.getPredictor()
	defer n.putPredictor(p)
	in := reuse(&p.in, 1, len(x))
	copy(in.Data, x)
	out := p.forward(in, false)
	res := make([]float64, out.Cols)
	copy(res, out.Row(0))
	return res
}

// PredictBatch runs a deterministic forward pass on a batch, returning a
// fresh matrix. Safe for concurrent use (no concurrent training); hot
// loops that can tolerate a borrowed result use a Predictor instead.
func (n *Network) PredictBatch(x *tensor.Matrix) *tensor.Matrix {
	p := n.getPredictor()
	defer n.putPredictor(p)
	return p.forward(x, false).Clone()
}

// PredictMC performs passes stochastic forward evaluations with dropout
// active (MC dropout, Gal & Ghahramani as cited in §III-B) and returns the
// predictive mean and standard deviation per output. With no dropout
// layers the std collapses to zero. Safe for concurrent use (no
// concurrent training).
func (n *Network) PredictMC(x []float64, passes int) (mean, std []float64) {
	p := n.getPredictor()
	defer n.putPredictor(p)
	in := reuse(&p.in, 1, len(x))
	copy(in.Data, x)
	m, s := p.PredictMCBatch(in, passes)
	mean = append([]float64(nil), m.Row(0)...)
	std = append([]float64(nil), s.Row(0)...)
	return mean, std
}

// PredictMCBatch runs passes MC-dropout evaluations over a whole batch
// using a pooled predictor, returning fresh per-element predictive mean
// and std matrices. Safe for concurrent use (no concurrent training).
func (n *Network) PredictMCBatch(x *tensor.Matrix, passes int) (mean, std *tensor.Matrix) {
	p := n.getPredictor()
	defer n.putPredictor(p)
	m, s := p.PredictMCBatch(x, passes)
	return m.Clone(), s.Clone()
}

// NewPredictor returns an inference context with its own workspaces and
// dropout rng stream. A Predictor is not safe for concurrent use itself,
// but distinct Predictors over the same Network may run in parallel as
// long as nothing trains the network concurrently.
func (n *Network) NewPredictor() *Predictor {
	return &Predictor{
		net:  n,
		rng:  xrand.New(n.predictorSeed()),
		bufs: make([]*tensor.Matrix, len(n.Layers)),
	}
}

// predictorSeed derives a distinct deterministic seed per predictor.
func (n *Network) predictorSeed() uint64 {
	n.predOnce.Do(func() { n.predBase = n.rng.Uint64() })
	return n.predBase + n.predCtr.Add(1)*0x9e3779b97f4a7c15
}

func (n *Network) getPredictor() *Predictor {
	if p, ok := n.predPool.Get().(*Predictor); ok {
		return p
	}
	return n.NewPredictor()
}

func (n *Network) putPredictor(p *Predictor) { n.predPool.Put(p) }

// Predictor owns the reusable workspaces for repeated inference on a
// shared Network: one buffer per layer plus MC-dropout accumulators.
// After warm-up at a given batch size its passes perform no heap
// allocation (beyond the matmul fan-out for large batches).
type Predictor struct {
	net        *Network
	rng        *xrand.Rand
	bufs       []*tensor.Matrix // one per layer
	in         *tensor.Matrix   // staging for vector queries
	colMask    []float64        // per-unit dropout mask shared across batch rows
	packW      *tensor.Matrix   // stacked masked-weight panel (MC fast path)
	packY      *tensor.Matrix   // all-passes output block (MC fast path)
	ref        *tensor.Matrix   // first-pass MC output (variance shift)
	sum, sumSq *tensor.Matrix   // MC accumulators of shifted deviations
	mean, std  *tensor.Matrix   // MC results
}

// firstStochastic returns the index of the first layer whose stochastic
// forward differs from eval mode (a Dropout with P > 0), or -1. Layers
// before it are pass-invariant under MC dropout: PredictMCBatch
// evaluates that deterministic prefix once and replays only the suffix.
func (n *Network) firstStochastic() int {
	for i, l := range n.Layers {
		if dr, ok := l.(*Dropout); ok && dr.P > 0 {
			return i
		}
	}
	return -1
}

// forward runs a batch through the network using the predictor's owned
// buffers. stochastic toggles dropout sampling (MC dropout); dense layers
// always run in eval mode and cache nothing.
func (p *Predictor) forward(x *tensor.Matrix, stochastic bool) *tensor.Matrix {
	return p.forwardRange(x, 0, len(p.net.Layers), stochastic)
}

// forwardRange runs layers [lo,hi) on x. Each layer writes only its own
// p.bufs slot, so a prefix result (the output of layer lo-1) survives
// any number of suffix replays.
func (p *Predictor) forwardRange(x *tensor.Matrix, lo, hi int, stochastic bool) *tensor.Matrix {
	h := x
	for i := lo; i < hi; i++ {
		switch ly := p.net.Layers[i].(type) {
		case *Dense:
			buf := reuse(&p.bufs[i], h.Rows, ly.Out)
			tensor.MatMulInto(buf, h, ly.W)
			ly.biasAct(buf)
			h = buf
		case *Dropout:
			if !stochastic || ly.P == 0 {
				continue
			}
			// One mask element per unit, shared across every row of the
			// batch: each MC pass evaluates the whole batch through a
			// single sampled thinned network, so the rng cost is per-pass
			// instead of per-element — the amortization that makes batched
			// UQ serving cheap. Per-row marginals are identical to
			// independent masking.
			if cap(p.colMask) < h.Cols {
				p.colMask = make([]float64, h.Cols)
			}
			mask := p.colMask[:h.Cols]
			keep := 1 - ly.P
			inv := 1 / keep
			for j := range mask {
				if p.rng.Float64() < keep {
					mask[j] = inv
				} else {
					mask[j] = 0
				}
			}
			// Algebraic fusion with a following dense layer: since the
			// mask is one value per column, (m⊙h)·W == h·(diag(m)·W), so
			// scaling W's rows (batch-size independent) replaces scaling
			// the whole batch.
			if i+1 < hi {
				if nd, ok := p.net.Layers[i+1].(*Dense); ok {
					mw := reuse(&p.bufs[i], nd.In, nd.Out)
					for r := 0; r < nd.In; r++ {
						mr := mask[r]
						src := nd.W.Data[r*nd.Out : (r+1)*nd.Out]
						dst := mw.Data[r*nd.Out : (r+1)*nd.Out]
						for k2, v := range src {
							dst[k2] = v * mr
						}
					}
					i++
					buf := reuse(&p.bufs[i], h.Rows, nd.Out)
					tensor.MatMulInto(buf, h, mw)
					nd.biasAct(buf)
					h = buf
					continue
				}
			}
			buf := reuse(&p.bufs[i], h.Rows, h.Cols)
			tensor.ScaleColumns(buf, h, mask)
			h = buf
		default:
			h = p.net.Layers[i].Forward(h, false, p.rng)
		}
	}
	return h
}

// Forward runs an eval-mode batch pass. The returned matrix is owned by
// the predictor and valid until its next call.
func (p *Predictor) Forward(x *tensor.Matrix) *tensor.Matrix { return p.forward(x, false) }

// PredictMCBatch runs passes MC-dropout evaluations of a whole batch,
// amortizing each layer matmul across all rows, and returns per-element
// predictive mean and std. Both returned matrices are owned by the
// predictor and valid until its next call.
//
// Only the network suffix from the first live dropout layer onward is
// stochastic, so the deterministic prefix (typically the widest matmuls
// and every activation before the dropout) is evaluated once and shared
// by all passes; a network with no live dropout collapses to a single
// eval pass with zero std.
func (p *Predictor) PredictMCBatch(x *tensor.Matrix, passes int) (mean, std *tensor.Matrix) {
	if passes < 1 {
		panic("nn: PredictMCBatch needs at least one pass")
	}
	nl := len(p.net.Layers)
	fs := p.net.firstStochastic()
	if fs < 0 {
		out := p.forward(x, false)
		mean = reuse(&p.mean, out.Rows, out.Cols)
		copy(mean.Data, out.Data)
		std = reuse(&p.std, out.Rows, out.Cols)
		std.Zero()
		return mean, std
	}
	pre := p.forwardRange(x, 0, fs, false)
	// Canonical MC-dropout tail — a single dropout feeding the output
	// layer — admits a stronger fusion: stack every pass's masked weights
	// into one panel and run all passes as one matmul.
	if fs == nl-2 {
		if dr, drOK := p.net.Layers[fs].(*Dropout); drOK {
			if nd, ok := p.net.Layers[fs+1].(*Dense); ok {
				return p.predictMCPanel(pre, dr, nd, passes)
			}
		}
	}
	// Accumulate deviations from the first pass (shifted-data variance):
	// exactly zero spread for deterministic nets and numerically robust
	// when the spread is small relative to the mean.
	var ref, sum, sumSq *tensor.Matrix
	for t := 0; t < passes; t++ {
		out := p.forwardRange(pre, fs, nl, true)
		if t == 0 {
			ref = reuse(&p.ref, out.Rows, out.Cols)
			copy(ref.Data, out.Data)
			sum = reuse(&p.sum, out.Rows, out.Cols)
			sum.Zero()
			sumSq = reuse(&p.sumSq, out.Rows, out.Cols)
			sumSq.Zero()
			continue
		}
		for k, v := range out.Data {
			d := v - ref.Data[k]
			sum.Data[k] += d
			sumSq.Data[k] += d * d
		}
	}
	mean = reuse(&p.mean, sum.Rows, sum.Cols)
	std = reuse(&p.std, sum.Rows, sum.Cols)
	inv := 1 / float64(passes)
	for k := range sum.Data {
		d := sum.Data[k] * inv
		mean.Data[k] = ref.Data[k] + d
		v := sumSq.Data[k]*inv - d*d
		if v < 0 {
			v = 0
		}
		std.Data[k] = math.Sqrt(v)
	}
	return mean, std
}

// predictMCPanel runs all MC passes of the canonical [..., Dropout,
// Dense] tail as one fused matmul. Column-shared masks make each pass's
// thinned output layer h·diag(mₜ)·W == h·(diag(mₜ)W), so the passes
// stack side by side into a single pre.Rows × (passes·Out) product:
//
//	Y = pre · [diag(m₁)W | diag(m₂)W | … ]
//
// turning passes separate skinny matmuls (catastrophic for an Out of 1,
// the usual surrogate shape) into one wide panel multiply. The mean/std
// per row then reduce across the pass groups.
func (p *Predictor) predictMCPanel(pre *tensor.Matrix, dr *Dropout, nd *Dense, passes int) (mean, std *tensor.Matrix) {
	in, out := nd.In, nd.Out
	packW := reuse(&p.packW, in, passes*out)
	keep := 1 - dr.P
	inv := 1 / keep
	for t := 0; t < passes; t++ {
		for r := 0; r < in; r++ {
			m := 0.0
			if p.rng.Float64() < keep {
				m = inv
			}
			src := nd.W.Data[r*out : (r+1)*out]
			dst := packW.Data[r*passes*out+t*out:]
			for j, v := range src {
				dst[j] = v * m
			}
		}
	}
	packY := reuse(&p.packY, pre.Rows, passes*out)
	tensor.MatMulInto(packY, pre, packW)
	mean = reuse(&p.mean, pre.Rows, out)
	std = reuse(&p.std, pre.Rows, out)
	invP := 1 / float64(passes)
	for i := 0; i < pre.Rows; i++ {
		yrow := packY.Row(i)
		mrow := mean.Row(i)
		srow := std.Row(i)
		for j := 0; j < out; j++ {
			// Shifted-data accumulation around the first pass, matching
			// the generic path's numerics.
			ref := nd.Act.apply(yrow[j] + nd.B.Data[j])
			sum, ssq := 0.0, 0.0
			for t := 1; t < passes; t++ {
				v := nd.Act.apply(yrow[t*out+j] + nd.B.Data[j])
				d := v - ref
				sum += d
				ssq += d * d
			}
			d := sum * invP
			mrow[j] = ref + d
			v := ssq*invP - d*d
			if v < 0 {
				v = 0
			}
			srow[j] = math.Sqrt(v)
		}
	}
	return mean, std
}
