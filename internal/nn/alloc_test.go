package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// TestDenseForwardBackwardZeroAlloc pins the hot-path contract: once a
// Dense layer has warmed up its owned workspaces for a batch size,
// Forward(training)+Backward allocate nothing. Shapes are kept below the
// matmul parallel-fanout threshold so goroutine spawning doesn't count.
func TestDenseForwardBackwardZeroAlloc(t *testing.T) {
	rng := xrand.New(5)
	d := NewDense(16, 16, Tanh, rng)
	x := tensor.NewMatrix(8, 16)
	g := tensor.NewMatrix(8, 16)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
		g.Data[i] = rng.Range(-1, 1)
	}
	step := func() {
		d.GW.Zero()
		d.GB.Zero()
		d.Forward(x, true, nil)
		d.Backward(g)
	}
	step() // warm up owned buffers
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("steady-state Dense Forward+Backward allocates %g times per step, want 0", allocs)
	}
}

// TestDropoutForwardBackwardZeroAlloc pins the same contract for Dropout.
func TestDropoutForwardBackwardZeroAlloc(t *testing.T) {
	rng := xrand.New(6)
	dr := NewDropout(0.3)
	x := tensor.NewMatrix(8, 16)
	g := tensor.NewMatrix(8, 16)
	x.Fill(1)
	g.Fill(1)
	step := func() {
		dr.Forward(x, true, rng)
		dr.Backward(g)
	}
	step()
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("steady-state Dropout Forward+Backward allocates %g times per step, want 0", allocs)
	}
}

// TestPredictorForwardZeroAlloc pins the serving-side contract: a warmed
// Predictor batch pass allocates nothing.
func TestPredictorForwardZeroAlloc(t *testing.T) {
	rng := xrand.New(7)
	net := NewMLP(rng, Tanh, 0.1, 8, 16, 16, 2)
	p := net.NewPredictor()
	x := tensor.NewMatrix(4, 8)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	p.Forward(x)
	if allocs := testing.AllocsPerRun(50, func() { p.Forward(x) }); allocs != 0 {
		t.Fatalf("steady-state Predictor.Forward allocates %g times per pass, want 0", allocs)
	}
}

// TestAdamStepZeroAlloc pins the optimizer hot-path contract: after the
// first Step initializes the moment buffers, the fused update allocates
// nothing.
func TestAdamStepZeroAlloc(t *testing.T) {
	rng := xrand.New(12)
	net := NewMLP(rng, Tanh, 0, 8, 16, 4)
	params := net.Params()
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.Range(-1, 1)
		}
	}
	opt := NewAdam(1e-3)
	opt.Step(params) // warm up m/v buffers
	if allocs := testing.AllocsPerRun(50, func() { opt.Step(params) }); allocs != 0 {
		t.Fatalf("steady-state Adam.Step allocates %g times per step, want 0", allocs)
	}
}

// TestSGDStepZeroAlloc pins the fused-SGD contract: after the first Step
// initializes the velocity buffers, the update allocates nothing.
func TestSGDStepZeroAlloc(t *testing.T) {
	rng := xrand.New(16)
	net := NewMLP(rng, Tanh, 0, 8, 16, 4)
	params := net.Params()
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.Range(-1, 1)
		}
	}
	for _, momentum := range []float64{0, 0.9} {
		opt := NewSGD(1e-2, momentum)
		opt.Step(params) // warm up velocity buffers
		if allocs := testing.AllocsPerRun(50, func() { opt.Step(params) }); allocs != 0 {
			t.Fatalf("steady-state SGD.Step (momentum=%g) allocates %g times per step, want 0", momentum, allocs)
		}
	}
}

// TestSGDFusedMatchesReference checks the fused momentum update against a
// direct transcription of classical-momentum SGD.
func TestSGDFusedMatchesReference(t *testing.T) {
	rng := xrand.New(17)
	val := tensor.NewMatrix(3, 4)
	grad := tensor.NewMatrix(3, 4)
	for i := range val.Data {
		val.Data[i] = rng.Range(-1, 1)
	}
	ref := val.Clone()
	refV := tensor.NewMatrix(3, 4)
	opt := NewSGD(1e-2, 0.9)
	params := []ParamPair{{Value: val, Grad: grad}}
	for step := 0; step < 5; step++ {
		for i := range grad.Data {
			grad.Data[i] = rng.Range(-1, 1)
		}
		opt.Step(params)
		for k := range ref.Data {
			refV.Data[k] = 0.9*refV.Data[k] - 1e-2*grad.Data[k]
			ref.Data[k] += refV.Data[k]
		}
	}
	if !tensor.Equal(val, ref, 1e-15) {
		t.Fatal("fused SGD diverged from reference formulas")
	}
}

// TestAdamFusedMatchesReference checks the fused one-pass update against a
// direct transcription of the Adam formulas.
func TestAdamFusedMatchesReference(t *testing.T) {
	rng := xrand.New(13)
	val := tensor.NewMatrix(3, 4)
	grad := tensor.NewMatrix(3, 4)
	for i := range val.Data {
		val.Data[i] = rng.Range(-1, 1)
	}
	ref := val.Clone()
	refM := tensor.NewMatrix(3, 4)
	refV := tensor.NewMatrix(3, 4)
	opt := NewAdam(1e-2)
	params := []ParamPair{{Value: val, Grad: grad}}
	for step := 1; step <= 5; step++ {
		for i := range grad.Data {
			grad.Data[i] = rng.Range(-1, 1)
		}
		opt.Step(params)
		c1 := 1 - math.Pow(opt.Beta1, float64(step))
		c2 := 1 - math.Pow(opt.Beta2, float64(step))
		for k := range ref.Data {
			g := grad.Data[k]
			refM.Data[k] = opt.Beta1*refM.Data[k] + (1-opt.Beta1)*g
			refV.Data[k] = opt.Beta2*refV.Data[k] + (1-opt.Beta2)*g*g
			ref.Data[k] -= opt.LR * (refM.Data[k] / c1) / (math.Sqrt(refV.Data[k]/c2) + opt.Eps)
		}
	}
	if !tensor.Equal(val, ref, 1e-12) {
		t.Fatal("fused Adam diverged from reference formulas")
	}
}

// TestSoftmaxCrossEntropyZeroAlloc pins the scratch-buffer path: after the
// first call, Value and Grad allocate nothing per row.
func TestSoftmaxCrossEntropyZeroAlloc(t *testing.T) {
	rng := xrand.New(14)
	pred := tensor.NewMatrix(16, 5)
	target := tensor.NewMatrix(16, 5)
	for i := range pred.Data {
		pred.Data[i] = rng.Range(-2, 2)
	}
	for i := 0; i < target.Rows; i++ {
		target.Set(i, i%target.Cols, 1)
	}
	loss := &SoftmaxCrossEntropy{}
	dst := tensor.NewMatrix(16, 5)
	loss.Value(pred, target) // warm up scratch
	loss.Grad(dst, pred, target)
	allocs := testing.AllocsPerRun(50, func() {
		loss.Value(pred, target)
		loss.Grad(dst, pred, target)
	})
	if allocs != 0 {
		t.Fatalf("steady-state softmax-xent Value+Grad allocates %g times, want 0", allocs)
	}
}

// TestNetworkSnapshotIndependence checks the double-buffering primitive: a
// snapshot predicts identically to its source, and further training of the
// source does not change the snapshot's predictions.
func TestNetworkSnapshotIndependence(t *testing.T) {
	rng := xrand.New(15)
	net := NewMLP(rng, Tanh, 0, 3, 12, 2)
	x := tensor.NewMatrix(6, 3)
	y := tensor.NewMatrix(6, 2)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	for i := range y.Data {
		y.Data[i] = rng.Range(-1, 1)
	}
	if _, err := net.Fit(x, y, TrainConfig{Epochs: 5, BatchSize: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	snap := net.Snapshot()
	probe := []float64{0.3, -0.2, 0.8}
	want := net.Predict(probe)
	got := snap.Predict(probe)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("snapshot prediction %v differs from source %v", got, want)
		}
	}
	if _, err := net.Fit(x, y, TrainConfig{Epochs: 20, BatchSize: 3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	after := snap.Predict(probe)
	for j := range want {
		if after[j] != want[j] {
			t.Fatal("training the source mutated the snapshot")
		}
	}
	moved := net.Predict(probe)
	same := true
	for j := range want {
		if moved[j] != want[j] {
			same = false
		}
	}
	if same {
		t.Fatal("source did not move after training; independence test vacuous")
	}
}

// TestDenseTrainingInputIsCopied locks in the aliasing fix: mutating the
// caller's batch buffer between Forward and Backward must not corrupt
// the cached activations the gradients are computed from.
func TestDenseTrainingInputIsCopied(t *testing.T) {
	rng := xrand.New(8)
	d := NewDense(2, 2, Identity, rng)
	x := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	g := tensor.FromRows([][]float64{{1, 0}, {0, 1}})

	d.GW.Zero()
	d.GB.Zero()
	d.Forward(x, true, nil)
	d.Backward(g)
	want := d.GW.Clone()

	d.GW.Zero()
	d.GB.Zero()
	d.Forward(x, true, nil)
	x.Fill(-99) // caller reuses its batch buffer before Backward
	d.Backward(g)
	if !tensor.Equal(d.GW, want, 1e-12) {
		t.Fatal("weight gradient depends on caller's buffer after Forward returned")
	}
}

// TestPredictorMatchesNetworkPredict checks that the workspace-reusing
// inference path computes exactly what the allocating eval path does.
func TestPredictorMatchesNetworkPredict(t *testing.T) {
	rng := xrand.New(9)
	net := NewMLP(rng, Tanh, 0, 3, 12, 12, 2)
	p := net.NewPredictor()
	x := tensor.NewMatrix(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	want := net.Forward(x, false)
	got := p.Forward(x)
	if !tensor.Equal(got, want, 0) {
		t.Fatal("Predictor.Forward differs from eval Forward")
	}
	// Repeated passes over different batch sizes stay correct.
	x2 := x.SliceRows(0, 2)
	want2 := net.Forward(x2, false)
	if !tensor.Equal(p.Forward(x2), want2, 0) {
		t.Fatal("Predictor.Forward wrong after batch-size change")
	}
}

// TestPredictMCBatchMatchesSingle sanity-checks the batched MC path
// against per-row statistics: for a deterministic net both must collapse
// to the eval prediction with zero std.
func TestPredictMCBatchMatchesSingle(t *testing.T) {
	rng := xrand.New(10)
	net := NewMLP(rng, Tanh, 0, 4, 10, 2)
	x := tensor.NewMatrix(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	mean, std := net.PredictMCBatch(x, 20)
	want := net.Forward(x, false)
	if !tensor.Equal(mean, want, 1e-12) {
		t.Fatal("deterministic MC batch mean differs from eval forward")
	}
	for _, v := range std.Data {
		if v != 0 {
			t.Fatalf("deterministic MC batch std %g want exactly 0", v)
		}
	}
}

// TestPredictMCBatchUncertaintyPositive checks dropout spread survives
// the batched path.
func TestPredictMCBatchUncertaintyPositive(t *testing.T) {
	rng := xrand.New(11)
	net := NewMLP(rng, Tanh, 0.2, 4, 32, 2)
	x := tensor.NewMatrix(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	_, std := net.PredictMCBatch(x, 40)
	for i, v := range std.Data {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("MC batch std[%d] = %g want > 0", i, v)
		}
	}
}
