package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// TestDenseForwardBackwardZeroAlloc pins the hot-path contract: once a
// Dense layer has warmed up its owned workspaces for a batch size,
// Forward(training)+Backward allocate nothing. Shapes are kept below the
// matmul parallel-fanout threshold so goroutine spawning doesn't count.
func TestDenseForwardBackwardZeroAlloc(t *testing.T) {
	rng := xrand.New(5)
	d := NewDense(16, 16, Tanh, rng)
	x := tensor.NewMatrix(8, 16)
	g := tensor.NewMatrix(8, 16)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
		g.Data[i] = rng.Range(-1, 1)
	}
	step := func() {
		d.GW.Zero()
		d.GB.Zero()
		d.Forward(x, true, nil)
		d.Backward(g)
	}
	step() // warm up owned buffers
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("steady-state Dense Forward+Backward allocates %g times per step, want 0", allocs)
	}
}

// TestDropoutForwardBackwardZeroAlloc pins the same contract for Dropout.
func TestDropoutForwardBackwardZeroAlloc(t *testing.T) {
	rng := xrand.New(6)
	dr := NewDropout(0.3)
	x := tensor.NewMatrix(8, 16)
	g := tensor.NewMatrix(8, 16)
	x.Fill(1)
	g.Fill(1)
	step := func() {
		dr.Forward(x, true, rng)
		dr.Backward(g)
	}
	step()
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("steady-state Dropout Forward+Backward allocates %g times per step, want 0", allocs)
	}
}

// TestPredictorForwardZeroAlloc pins the serving-side contract: a warmed
// Predictor batch pass allocates nothing.
func TestPredictorForwardZeroAlloc(t *testing.T) {
	rng := xrand.New(7)
	net := NewMLP(rng, Tanh, 0.1, 8, 16, 16, 2)
	p := net.NewPredictor()
	x := tensor.NewMatrix(4, 8)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	p.Forward(x)
	if allocs := testing.AllocsPerRun(50, func() { p.Forward(x) }); allocs != 0 {
		t.Fatalf("steady-state Predictor.Forward allocates %g times per pass, want 0", allocs)
	}
}

// TestDenseTrainingInputIsCopied locks in the aliasing fix: mutating the
// caller's batch buffer between Forward and Backward must not corrupt
// the cached activations the gradients are computed from.
func TestDenseTrainingInputIsCopied(t *testing.T) {
	rng := xrand.New(8)
	d := NewDense(2, 2, Identity, rng)
	x := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	g := tensor.FromRows([][]float64{{1, 0}, {0, 1}})

	d.GW.Zero()
	d.GB.Zero()
	d.Forward(x, true, nil)
	d.Backward(g)
	want := d.GW.Clone()

	d.GW.Zero()
	d.GB.Zero()
	d.Forward(x, true, nil)
	x.Fill(-99) // caller reuses its batch buffer before Backward
	d.Backward(g)
	if !tensor.Equal(d.GW, want, 1e-12) {
		t.Fatal("weight gradient depends on caller's buffer after Forward returned")
	}
}

// TestPredictorMatchesNetworkPredict checks that the workspace-reusing
// inference path computes exactly what the allocating eval path does.
func TestPredictorMatchesNetworkPredict(t *testing.T) {
	rng := xrand.New(9)
	net := NewMLP(rng, Tanh, 0, 3, 12, 12, 2)
	p := net.NewPredictor()
	x := tensor.NewMatrix(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	want := net.Forward(x, false)
	got := p.Forward(x)
	if !tensor.Equal(got, want, 0) {
		t.Fatal("Predictor.Forward differs from eval Forward")
	}
	// Repeated passes over different batch sizes stay correct.
	x2 := x.SliceRows(0, 2)
	want2 := net.Forward(x2, false)
	if !tensor.Equal(p.Forward(x2), want2, 0) {
		t.Fatal("Predictor.Forward wrong after batch-size change")
	}
}

// TestPredictMCBatchMatchesSingle sanity-checks the batched MC path
// against per-row statistics: for a deterministic net both must collapse
// to the eval prediction with zero std.
func TestPredictMCBatchMatchesSingle(t *testing.T) {
	rng := xrand.New(10)
	net := NewMLP(rng, Tanh, 0, 4, 10, 2)
	x := tensor.NewMatrix(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	mean, std := net.PredictMCBatch(x, 20)
	want := net.Forward(x, false)
	if !tensor.Equal(mean, want, 1e-12) {
		t.Fatal("deterministic MC batch mean differs from eval forward")
	}
	for _, v := range std.Data {
		if v != 0 {
			t.Fatalf("deterministic MC batch std %g want exactly 0", v)
		}
	}
}

// TestPredictMCBatchUncertaintyPositive checks dropout spread survives
// the batched path.
func TestPredictMCBatchUncertaintyPositive(t *testing.T) {
	rng := xrand.New(11)
	net := NewMLP(rng, Tanh, 0.2, 4, 32, 2)
	x := tensor.NewMatrix(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	_, std := net.PredictMCBatch(x, 40)
	for i, v := range std.Data {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("MC batch std[%d] = %g want > 0", i, v)
		}
	}
}
