package nn

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// This file implements the fused inference engine: a trained Network is
// compiled into a flat program whose single-query forward pass runs with
// zero heap allocations and no per-layer interface dispatch. Serving
// wrappers recompile on every publish, so the hot path always executes the
// compiled form while training keeps the flexible layer graph.

// stepKind discriminates compiled program steps.
type stepKind uint8

const (
	stepDense stepKind = iota
	stepDropout
)

// compiledStep is one fused stage of the program. A dense step runs as a
// single sweep over its contiguous weight panel: the output buffer is
// seeded with the bias (no zeroing pass), the input row streams through
// the panel-axpy matmul kernel, and the activation is applied in place —
// no intermediate tensor objects and no per-layer interface dispatch.
type compiledStep struct {
	kind    stepKind
	in, out int
	w       []float64 // in x out, row-major copy of the layer's W
	b       []float64
	act     Activation
	p       float64 // dropout probability (stepDropout only)
}

// Compiled is an immutable, flattened inference program for a Network.
// All mutable per-call state (ping-pong activation buffers, dropout rng,
// MC accumulators) lives in pooled contexts, so a Compiled value is safe
// for concurrent use and its warmed single-query passes allocate nothing.
//
// A Compiled program captures the network weights by copy at Compile
// time: training the source network afterwards does not affect it, which
// is exactly the snapshot semantics double-buffered serving needs.
type Compiled struct {
	in, out  int
	steps    []compiledStep
	fs       int // first stochastic step (live dropout), -1 if none
	maxW     int // widest activation buffer any step needs
	seedBase uint64
	seedCtr  atomic.Uint64
	pool     sync.Pool // *compiledCtx
}

// compiledCtx owns the per-call scratch of one in-flight inference: two
// ping-pong activation buffers sized at compile time plus the MC-dropout
// accumulators and a private rng stream.
type compiledCtx struct {
	buf [2][]float64
	pre []float64 // deterministic-prefix output shared by all MC passes
	rng *xrand.Rand
	ref []float64 // first-pass output (shifted-variance reference)
	sum []float64
	ssq []float64
}

// Compile flattens the network into a fused inference program. It
// supports Dense and Dropout layers (the full serving-path vocabulary);
// any other layer type returns nil, and callers fall back to the
// interpreted Predictor path.
func (n *Network) Compile() *Compiled {
	c := &Compiled{seedBase: n.predictorSeed(), fs: -1}
	width := -1
	for _, l := range n.Layers {
		switch ly := l.(type) {
		case *Dense:
			c.steps = append(c.steps, compiledStep{
				kind: stepDense, in: ly.In, out: ly.Out,
				w:   append([]float64(nil), ly.W.Data...),
				b:   append([]float64(nil), ly.B.Data...),
				act: ly.Act,
			})
			if width < 0 {
				c.in = ly.In
				if ly.In > c.maxW {
					c.maxW = ly.In
				}
			}
			width = ly.Out
			if width > c.maxW {
				c.maxW = width
			}
		case *Dropout:
			if ly.P > 0 && c.fs < 0 {
				c.fs = len(c.steps)
			}
			c.steps = append(c.steps, compiledStep{kind: stepDropout, p: ly.P})
		default:
			return nil
		}
	}
	if width < 0 {
		return nil // no dense layer: nothing to compile
	}
	c.out = width
	return c
}

// Dims returns the program's input and output widths.
func (c *Compiled) Dims() (in, out int) { return c.in, c.out }

// getCtx leases a warm context, minting one with a fresh deterministic
// rng substream on pool miss.
func (c *Compiled) getCtx() *compiledCtx {
	if ctx, ok := c.pool.Get().(*compiledCtx); ok {
		return ctx
	}
	return &compiledCtx{
		buf: [2][]float64{make([]float64, c.maxW), make([]float64, c.maxW)},
		pre: make([]float64, c.maxW),
		rng: xrand.New(c.seedBase + c.seedCtr.Add(1)*0x9e3779b97f4a7c15),
		ref: make([]float64, c.out),
		sum: make([]float64, c.out),
		ssq: make([]float64, c.out),
	}
}

// forward runs one input vector through the program using ctx's ping-pong
// buffers and returns a view of the output buffer (valid until the next
// use of ctx). stochastic toggles dropout sampling for MC passes.
func (c *Compiled) forward(ctx *compiledCtx, x []float64, stochastic bool) []float64 {
	return c.forwardRange(ctx, x, 0, len(c.steps), stochastic)
}

// forwardRange runs steps [lo,hi) on x through ctx's ping-pong buffers.
func (c *Compiled) forwardRange(ctx *compiledCtx, x []float64, lo, hi int, stochastic bool) []float64 {
	cur := ctx.buf[0][:len(x)]
	copy(cur, x)
	side := 1
	for si := lo; si < hi; si++ {
		st := &c.steps[si]
		switch st.kind {
		case stepDense:
			out := ctx.buf[side][:st.out]
			copy(out, st.b) // seed with the bias: no zeroing pass
			tensor.AxpyPanels(out, cur, st.w)
			if st.act != Identity {
				for j, v := range out {
					out[j] = st.act.apply(v)
				}
			}
			cur = out
			side = 1 - side
		case stepDropout:
			if !stochastic || st.p == 0 {
				continue
			}
			keep := 1 - st.p
			inv := 1 / keep
			for i := range cur {
				if ctx.rng.Float64() < keep {
					cur[i] *= inv
				} else {
					cur[i] = 0
				}
			}
		}
	}
	return cur
}

// checkIn panics on input-width mismatch (programming error, mirroring
// the layer-path behaviour).
func (c *Compiled) checkIn(x []float64) {
	if len(x) != c.in {
		panic(fmt.Sprintf("nn: compiled program expects %d inputs, got %d", c.in, len(x)))
	}
}

// Predict runs one deterministic (eval-mode) forward pass, writing the
// result into dst (len == out; nil allocates) and returning it. With a
// caller-provided dst a warmed Predict performs zero heap allocations.
// Safe for concurrent use.
func (c *Compiled) Predict(x, dst []float64) []float64 {
	c.checkIn(x)
	if dst == nil {
		dst = make([]float64, c.out)
	} else if len(dst) != c.out {
		panic(fmt.Sprintf("nn: compiled dst len %d, want %d", len(dst), c.out))
	}
	ctx := c.getCtx()
	copy(dst, c.forward(ctx, x, false))
	c.pool.Put(ctx)
	return dst
}

// PredictMC runs passes stochastic forward evaluations (MC dropout) and
// writes the predictive mean and std into mean/std (len == out; nil
// allocates), returning both. The deterministic prefix — every step
// before the first live dropout — is evaluated once and shared by all
// passes; a program with no live dropout collapses to one eval pass with
// zero std. The variance is accumulated as deviations from the first
// pass (shifted data), matching Predictor.PredictMCBatch. With
// caller-provided buffers a warmed call allocates nothing. Safe for
// concurrent use.
func (c *Compiled) PredictMC(x []float64, passes int, mean, std []float64) (m, s []float64) {
	if passes < 1 {
		panic("nn: PredictMC needs at least one pass")
	}
	c.checkIn(x)
	if mean == nil {
		mean = make([]float64, c.out)
	}
	if std == nil {
		std = make([]float64, c.out)
	}
	if len(mean) != c.out || len(std) != c.out {
		panic("nn: compiled mean/std length mismatch")
	}
	ctx := c.getCtx()
	if c.fs < 0 {
		copy(mean, c.forward(ctx, x, false))
		for k := range std {
			std[k] = 0
		}
		c.pool.Put(ctx)
		return mean, std
	}
	// The ping-pong buffers are clobbered by every pass, so the prefix
	// output is parked in its own buffer and replayed from there.
	pre := ctx.pre[:len(x)]
	if c.fs > 0 {
		prefix := c.forwardRange(ctx, x, 0, c.fs, false)
		pre = ctx.pre[:len(prefix)]
		copy(pre, prefix)
	} else {
		copy(pre, x)
	}
	ref, sum, ssq := ctx.ref, ctx.sum, ctx.ssq
	for k := range sum {
		sum[k] = 0
		ssq[k] = 0
	}
	for t := 0; t < passes; t++ {
		out := c.forwardRange(ctx, pre, c.fs, len(c.steps), true)
		if t == 0 {
			copy(ref, out)
			continue
		}
		for k, v := range out {
			d := v - ref[k]
			sum[k] += d
			ssq[k] += d * d
		}
	}
	inv := 1 / float64(passes)
	for k := range mean {
		d := sum[k] * inv
		mean[k] = ref[k] + d
		v := ssq[k]*inv - d*d
		if v < 0 {
			v = 0
		}
		std[k] = math.Sqrt(v)
	}
	c.pool.Put(ctx)
	return mean, std
}
