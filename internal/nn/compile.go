package nn

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// This file implements the fused inference engine: a trained Network is
// compiled into a flat program whose single-query forward pass runs with
// zero heap allocations and no per-layer interface dispatch. Serving
// wrappers recompile on every publish, so the hot path always executes the
// compiled form while training keeps the flexible layer graph.

// stepKind discriminates compiled program steps.
type stepKind uint8

const (
	stepDense stepKind = iota
	stepDropout
)

// compiledStep is one fused stage of the program. A dense step runs as a
// single sweep over its contiguous weight panel: the output buffer is
// seeded with the bias (no zeroing pass), the input row streams through
// the panel-axpy matmul kernel, and the activation is applied in place —
// no intermediate tensor objects and no per-layer interface dispatch.
type compiledStep struct {
	kind    stepKind
	in, out int
	w       []float64      // in x out, row-major copy of the layer's W
	wm      *tensor.Matrix // matrix view over w for the batch kernels
	b       []float64
	act     Activation
	p       float64 // dropout probability (stepDropout only)
}

// Compiled is an immutable, flattened inference program for a Network.
// All mutable per-call state (ping-pong activation buffers, dropout rng,
// MC accumulators) lives in pooled contexts, so a Compiled value is safe
// for concurrent use and its warmed single-query passes allocate nothing.
//
// A Compiled program captures the network weights by copy at Compile
// time: training the source network afterwards does not affect it, which
// is exactly the snapshot semantics double-buffered serving needs.
type Compiled struct {
	in, out  int
	steps    []compiledStep
	fs       int // first stochastic step (live dropout), -1 if none
	maxW     int // widest activation buffer any step needs
	maxBatch int // batch-program chunk width (rows per fused pass)
	seedBase uint64
	seedCtr  atomic.Uint64
	pool     sync.Pool // *compiledCtx
	bpool    sync.Pool // *compiledBatchCtx
}

// compiledCtx owns the per-call scratch of one in-flight inference: two
// ping-pong activation buffers sized at compile time plus the MC-dropout
// accumulators and a private rng stream.
type compiledCtx struct {
	buf [2][]float64
	pre []float64 // deterministic-prefix output shared by all MC passes
	rng *xrand.Rand
	ref []float64 // first-pass output (shifted-variance reference)
	sum []float64
	ssq []float64
}

// DefaultMaxBatch is the batch-program chunk width Compile provisions
// when the caller does not pick one via CompileBatch. It matches the
// default coalescer micro-batch size so a coalesced dispatch runs as one
// fused pass.
const DefaultMaxBatch = 64

// Compile flattens the network into a fused inference program. It
// supports Dense and Dropout layers (the full serving-path vocabulary);
// any other layer type returns nil, and callers fall back to the
// interpreted Predictor path. The program's batch entry points chunk at
// DefaultMaxBatch rows; CompileBatch picks the width explicitly.
func (n *Network) Compile() *Compiled {
	return n.CompileBatch(DefaultMaxBatch)
}

// CompileBatch compiles the network like Compile with the batch program
// sized for maxBatch rows per fused pass: PredictBatch and PredictMCBatch
// accept any row count and internally split it into chunks of at most
// maxBatch rows, each served from pooled ping-pong scratch at zero heap
// allocations. Larger widths amortize per-pass overhead further at the
// cost of proportionally larger pooled buffers (the MC scratch scales
// with passes·maxBatch rows).
func (n *Network) CompileBatch(maxBatch int) *Compiled {
	if maxBatch < 1 {
		maxBatch = 1
	}
	c := &Compiled{seedBase: n.predictorSeed(), fs: -1, maxBatch: maxBatch}
	width := -1
	for _, l := range n.Layers {
		switch ly := l.(type) {
		case *Dense:
			w := append([]float64(nil), ly.W.Data...)
			c.steps = append(c.steps, compiledStep{
				kind: stepDense, in: ly.In, out: ly.Out,
				w:   w,
				wm:  &tensor.Matrix{Rows: ly.In, Cols: ly.Out, Data: w},
				b:   append([]float64(nil), ly.B.Data...),
				act: ly.Act,
			})
			if width < 0 {
				c.in = ly.In
				if ly.In > c.maxW {
					c.maxW = ly.In
				}
			}
			width = ly.Out
			if width > c.maxW {
				c.maxW = width
			}
		case *Dropout:
			if ly.P > 0 && c.fs < 0 {
				c.fs = len(c.steps)
			}
			c.steps = append(c.steps, compiledStep{kind: stepDropout, p: ly.P})
		default:
			return nil
		}
	}
	if width < 0 {
		return nil // no dense layer: nothing to compile
	}
	c.out = width
	return c
}

// Dims returns the program's input and output widths.
func (c *Compiled) Dims() (in, out int) { return c.in, c.out }

// MaxBatch returns the batch-program chunk width: the largest row count
// one fused pass serves before the batch entry points split the input.
func (c *Compiled) MaxBatch() int { return c.maxBatch }

// getCtx leases a warm context, minting one with a fresh deterministic
// rng substream on pool miss.
func (c *Compiled) getCtx() *compiledCtx {
	if ctx, ok := c.pool.Get().(*compiledCtx); ok {
		return ctx
	}
	return &compiledCtx{
		buf: [2][]float64{make([]float64, c.maxW), make([]float64, c.maxW)},
		pre: make([]float64, c.maxW),
		rng: xrand.New(c.seedBase + c.seedCtr.Add(1)*0x9e3779b97f4a7c15),
		ref: make([]float64, c.out),
		sum: make([]float64, c.out),
		ssq: make([]float64, c.out),
	}
}

// forward runs one input vector through the program using ctx's ping-pong
// buffers and returns a view of the output buffer (valid until the next
// use of ctx). stochastic toggles dropout sampling for MC passes.
func (c *Compiled) forward(ctx *compiledCtx, x []float64, stochastic bool) []float64 {
	return c.forwardRange(ctx, x, 0, len(c.steps), stochastic)
}

// forwardRange runs steps [lo,hi) on x through ctx's ping-pong buffers.
func (c *Compiled) forwardRange(ctx *compiledCtx, x []float64, lo, hi int, stochastic bool) []float64 {
	cur := ctx.buf[0][:len(x)]
	copy(cur, x)
	side := 1
	for si := lo; si < hi; si++ {
		st := &c.steps[si]
		switch st.kind {
		case stepDense:
			out := ctx.buf[side][:st.out]
			copy(out, st.b) // seed with the bias: no zeroing pass
			tensor.AxpyPanels(out, cur, st.w)
			if st.act != Identity {
				for j, v := range out {
					out[j] = st.act.apply(v)
				}
			}
			cur = out
			side = 1 - side
		case stepDropout:
			if !stochastic || st.p == 0 {
				continue
			}
			keep := 1 - st.p
			inv := 1 / keep
			for i := range cur {
				if ctx.rng.Float64() < keep {
					cur[i] *= inv
				} else {
					cur[i] = 0
				}
			}
		}
	}
	return cur
}

// checkIn panics on input-width mismatch (programming error, mirroring
// the layer-path behaviour).
func (c *Compiled) checkIn(x []float64) {
	if len(x) != c.in {
		panic(fmt.Sprintf("nn: compiled program expects %d inputs, got %d", c.in, len(x)))
	}
}

// Predict runs one deterministic (eval-mode) forward pass, writing the
// result into dst (len == out; nil allocates) and returning it. With a
// caller-provided dst a warmed Predict performs zero heap allocations.
// Safe for concurrent use.
func (c *Compiled) Predict(x, dst []float64) []float64 {
	c.checkIn(x)
	if dst == nil {
		dst = make([]float64, c.out)
	} else if len(dst) != c.out {
		panic(fmt.Sprintf("nn: compiled dst len %d, want %d", len(dst), c.out))
	}
	ctx := c.getCtx()
	copy(dst, c.forward(ctx, x, false))
	c.pool.Put(ctx)
	return dst
}

// PredictMC runs passes stochastic forward evaluations (MC dropout) and
// writes the predictive mean and std into mean/std (len == out; nil
// allocates), returning both. The deterministic prefix — every step
// before the first live dropout — is evaluated once and shared by all
// passes; a program with no live dropout collapses to one eval pass with
// zero std. The variance is accumulated as deviations from the first
// pass (shifted data), matching Predictor.PredictMCBatch. With
// caller-provided buffers a warmed call allocates nothing. Safe for
// concurrent use.
func (c *Compiled) PredictMC(x []float64, passes int, mean, std []float64) (m, s []float64) {
	if passes < 1 {
		panic("nn: PredictMC needs at least one pass")
	}
	c.checkIn(x)
	if mean == nil {
		mean = make([]float64, c.out)
	}
	if std == nil {
		std = make([]float64, c.out)
	}
	if len(mean) != c.out || len(std) != c.out {
		panic("nn: compiled mean/std length mismatch")
	}
	ctx := c.getCtx()
	if c.fs < 0 {
		copy(mean, c.forward(ctx, x, false))
		for k := range std {
			std[k] = 0
		}
		c.pool.Put(ctx)
		return mean, std
	}
	// The ping-pong buffers are clobbered by every pass, so the prefix
	// output is parked in its own buffer and replayed from there.
	pre := ctx.pre[:len(x)]
	if c.fs > 0 {
		prefix := c.forwardRange(ctx, x, 0, c.fs, false)
		pre = ctx.pre[:len(prefix)]
		copy(pre, prefix)
	} else {
		copy(pre, x)
	}
	ref, sum, ssq := ctx.ref, ctx.sum, ctx.ssq
	for k := range sum {
		sum[k] = 0
		ssq[k] = 0
	}
	for t := 0; t < passes; t++ {
		out := c.forwardRange(ctx, pre, c.fs, len(c.steps), true)
		if t == 0 {
			copy(ref, out)
			continue
		}
		for k, v := range out {
			d := v - ref[k]
			sum[k] += d
			ssq[k] += d * d
		}
	}
	inv := 1 / float64(passes)
	for k := range mean {
		d := sum[k] * inv
		mean[k] = ref[k] + d
		v := ssq[k]*inv - d*d
		if v < 0 {
			v = 0
		}
		std[k] = math.Sqrt(v)
	}
	c.pool.Put(ctx)
	return mean, std
}

// compiledBatchCtx owns the per-call scratch of one in-flight batch
// inference: ping-pong activation matrices for one chunk, the tall
// pass-stacked panels for MC evaluation, the per-pass column masks, and
// a private rng stream. All matrices grow on first use and are then
// reused via Reshape, so a warmed context serves any chunk at zero heap
// allocations.
type compiledBatchCtx struct {
	buf   [2]*tensor.Matrix // chunk ping-pong activations (≤ maxBatch rows)
	tall  [2]*tensor.Matrix // pass-stacked panels (≤ passes·maxBatch rows)
	masks []float64         // per-pass column masks, passes x width
	view  tensor.Matrix     // reusable window header over the caller's input
	rng   *xrand.Rand
}

// getBatchCtx leases a warm batch context, minting one with a fresh
// deterministic rng substream on pool miss.
func (c *Compiled) getBatchCtx() *compiledBatchCtx {
	if ctx, ok := c.bpool.Get().(*compiledBatchCtx); ok {
		return ctx
	}
	return &compiledBatchCtx{
		rng: xrand.New(c.seedBase + c.seedCtr.Add(1)*0x9e3779b97f4a7c15),
	}
}

// applyAct applies a to every element of xs in place.
func applyAct(a Activation, xs []float64) {
	if a == Identity {
		return
	}
	for i, v := range xs {
		xs[i] = a.apply(v)
	}
}

// growFloats returns *buf resized to n, reallocating only on growth.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// forwardBatchPrefix runs steps [0,hi) of rows [lo,lo+b) of xs through
// the chunk ping-pong buffers in eval mode and returns the resulting
// activation matrix. The chunk is consumed through a reusable window
// header over the caller's rows — never copied — so the result may alias
// xs when hi contains no dense step; callers only read it either way.
// The result is owned by ctx and valid until its next use.
func (c *Compiled) forwardBatchPrefix(ctx *compiledBatchCtx, xs *tensor.Matrix, lo, b, hi int) *tensor.Matrix {
	ctx.view = tensor.Matrix{Rows: b, Cols: c.in, Data: xs.Data[lo*c.in : (lo+b)*c.in]}
	cur := &ctx.view
	side := 0
	for si := 0; si < hi; si++ {
		st := &c.steps[si]
		if st.kind != stepDense {
			continue // eval-mode dropout is the identity
		}
		out := reuse(&ctx.buf[side], b, st.out)
		tensor.MatMulBiasInto(out, cur, st.wm, st.b)
		applyAct(st.act, out.Data)
		cur = out
		side = 1 - side
	}
	return cur
}

// checkBatchIn panics on input-width mismatch for the batch entry points.
func (c *Compiled) checkBatchIn(xs *tensor.Matrix) {
	if xs.Cols != c.in {
		panic(fmt.Sprintf("nn: compiled batch has %d cols, program wants %d", xs.Cols, c.in))
	}
}

// PredictBatch runs a deterministic (eval-mode) forward pass over every
// row of xs, writing the results into dst (reshaped to xs.Rows x out; nil
// allocates) and returning it. Inputs wider than the compiled MaxBatch
// are split into chunks internally, so any row count is served — and with
// a caller-provided dst a warmed call performs zero heap allocations
// regardless of how many chunks it takes. Safe for concurrent use.
func (c *Compiled) PredictBatch(xs, dst *tensor.Matrix) *tensor.Matrix {
	c.checkBatchIn(xs)
	if dst == nil {
		dst = tensor.NewMatrix(xs.Rows, c.out)
	} else {
		dst.Reshape(xs.Rows, c.out)
	}
	ctx := c.getBatchCtx()
	for lo := 0; lo < xs.Rows; lo += c.maxBatch {
		b := xs.Rows - lo
		if b > c.maxBatch {
			b = c.maxBatch
		}
		out := c.forwardBatchPrefix(ctx, xs, lo, b, len(c.steps))
		copy(dst.Data[lo*c.out:(lo+b)*c.out], out.Data)
	}
	c.bpool.Put(ctx)
	return dst
}

// PredictMCBatch runs passes MC-dropout evaluations over every row of xs
// and writes per-row predictive means and stds into mean/std (reshaped to
// xs.Rows x out; nil allocates), returning both.
//
// Instead of replaying the stochastic suffix once per pass, the passes
// are stacked: the deterministic prefix is evaluated once per chunk, its
// output is tiled passes times into one tall (passes·rows)-row panel, and
// the whole suffix — arbitrarily many [Dropout, Dense, ...] stages — runs
// over that panel with ONE fused matmul per dense step. Each dropout step
// samples one column mask per pass (shared across the pass's rows, the
// same marginals as per-element masking) and scales its pass block, so
// deep multi-dropout surrogates pay len(suffix) matmul sweeps total
// rather than passes·len(suffix). Inputs wider than MaxBatch chunk
// internally; with caller-provided buffers a warmed call allocates
// nothing. The variance is accumulated as deviations from the first pass,
// matching PredictMC's numerics. Safe for concurrent use.
func (c *Compiled) PredictMCBatch(xs *tensor.Matrix, passes int, mean, std *tensor.Matrix) (m, s *tensor.Matrix) {
	if passes < 1 {
		panic("nn: PredictMCBatch needs at least one pass")
	}
	c.checkBatchIn(xs)
	if mean == nil {
		mean = tensor.NewMatrix(xs.Rows, c.out)
	} else {
		mean.Reshape(xs.Rows, c.out)
	}
	if std == nil {
		std = tensor.NewMatrix(xs.Rows, c.out)
	} else {
		std.Reshape(xs.Rows, c.out)
	}
	if c.fs < 0 {
		c.PredictBatch(xs, mean)
		std.Zero()
		return mean, std
	}
	ctx := c.getBatchCtx()
	for lo := 0; lo < xs.Rows; lo += c.maxBatch {
		b := xs.Rows - lo
		if b > c.maxBatch {
			b = c.maxBatch
		}
		c.predictMCChunk(ctx, xs, lo, b, passes, mean, std)
	}
	c.bpool.Put(ctx)
	return mean, std
}

// predictMCChunk evaluates rows [lo,lo+b) of xs with MC dropout, writing
// the reduced statistics into the matching mean/std rows. The canonical
// [..., Dropout, Dense] tail takes the masked-weight panel fast path
// (stack every pass's diag(mₜ)·W side by side and run all passes as one
// b x (passes·out) matmul — O(in·passes·out) mask work); deeper
// stochastic suffixes take the general pass-stacked path below.
func (c *Compiled) predictMCChunk(ctx *compiledBatchCtx, xs *tensor.Matrix, lo, b, passes int, mean, std *tensor.Matrix) {
	if c.fs == len(c.steps)-2 && c.steps[c.fs+1].kind == stepDense {
		c.predictMCChunkTail(ctx, xs, lo, b, passes, mean, std)
		return
	}
	pre := c.forwardBatchPrefix(ctx, xs, lo, b, c.fs)
	tall := tensor.RepeatRowsInto(reuse(&ctx.tall[0], passes*b, pre.Cols), pre, passes)
	side := 1
	for si := c.fs; si < len(c.steps); si++ {
		st := &c.steps[si]
		switch st.kind {
		case stepDropout:
			if st.p == 0 {
				continue
			}
			masks := growFloats(&ctx.masks, passes*tall.Cols)
			keep := 1 - st.p
			inv := 1 / keep
			for i := range masks {
				if ctx.rng.Float64() < keep {
					masks[i] = inv
				} else {
					masks[i] = 0
				}
			}
			tensor.ScaleColumnsBlocks(tall, tall, masks, b)
		case stepDense:
			out := reuse(&ctx.tall[side], passes*b, st.out)
			tensor.MatMulBiasInto(out, tall, st.wm, st.b)
			applyAct(st.act, out.Data)
			tall = out
			side = 1 - side
		}
	}
	// Reduce the pass blocks row-wise with the shifted-data accumulation
	// (deviations from pass 0) the single-query path uses.
	out := c.out
	invP := 1 / float64(passes)
	for r := 0; r < b; r++ {
		mrow := mean.Data[(lo+r)*out : (lo+r+1)*out]
		srow := std.Data[(lo+r)*out : (lo+r+1)*out]
		ref := tall.Data[r*out : (r+1)*out]
		for j := 0; j < out; j++ {
			refv := ref[j]
			sum, ssq := 0.0, 0.0
			for t := 1; t < passes; t++ {
				d := tall.Data[(t*b+r)*out+j] - refv
				sum += d
				ssq += d * d
			}
			d := sum * invP
			mrow[j] = refv + d
			v := ssq*invP - d*d
			if v < 0 {
				v = 0
			}
			srow[j] = math.Sqrt(v)
		}
	}
}

// predictMCChunkTail is the canonical-tail fast path: the stochastic
// suffix is exactly [Dropout, Dense], so each pass's thinned output layer
// is h·(diag(mₜ)·W) and the passes stack side by side into one
// b x (passes·out) product
//
//	Y = pre · [diag(m₁)W | diag(m₂)W | … ]
//
// — one matmul for all passes with mask work proportional to the weight
// panel, not the batch. This is the batched generalization of the PR-3
// Predictor.predictMCPanel fusion, sharing its column-mask semantics and
// shifted-variance numerics.
func (c *Compiled) predictMCChunkTail(ctx *compiledBatchCtx, xs *tensor.Matrix, lo, b, passes int, mean, std *tensor.Matrix) {
	pre := c.forwardBatchPrefix(ctx, xs, lo, b, c.fs)
	dr := &c.steps[c.fs]
	nd := &c.steps[c.fs+1]
	in, out := nd.in, nd.out
	packW := reuse(&ctx.tall[0], in, passes*out)
	keep := 1 - dr.p
	inv := 1 / keep
	for r := 0; r < in; r++ {
		src := nd.w[r*out : (r+1)*out]
		dstRow := packW.Data[r*passes*out : (r+1)*passes*out]
		for t := 0; t < passes; t++ {
			m := 0.0
			if ctx.rng.Float64() < keep {
				m = inv
			}
			seg := dstRow[t*out : (t+1)*out]
			for j, v := range src {
				seg[j] = v * m
			}
		}
	}
	packY := reuse(&ctx.tall[1], b, passes*out)
	tensor.MatMulInto(packY, pre, packW)
	invP := 1 / float64(passes)
	for r := 0; r < b; r++ {
		yrow := packY.Data[r*passes*out : (r+1)*passes*out]
		mrow := mean.Data[(lo+r)*out : (lo+r+1)*out]
		srow := std.Data[(lo+r)*out : (lo+r+1)*out]
		for j := 0; j < out; j++ {
			ref := nd.act.apply(yrow[j] + nd.b[j])
			sum, ssq := 0.0, 0.0
			for t := 1; t < passes; t++ {
				v := nd.act.apply(yrow[t*out+j] + nd.b[j])
				d := v - ref
				sum += d
				ssq += d * d
			}
			d := sum * invP
			mrow[j] = ref + d
			v := ssq*invP - d*d
			if v < 0 {
				v = 0
			}
			srow[j] = math.Sqrt(v)
		}
	}
}
