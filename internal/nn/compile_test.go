package nn

import (
	"math"
	"sync"
	"testing"

	"repro/internal/raceflag"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// skipAllocCheckUnderRace documents why pooled-path alloc tests cannot
// run under -race: sync.Pool drops a fraction of Put items there.
func skipAllocCheckUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("sync.Pool drops items under -race; alloc counts through pooled paths are meaningless")
	}
}

// TestCompiledMatchesPredict checks the fused program against the layer
// graph: same inputs, same outputs (up to summation-order rounding).
func TestCompiledMatchesPredict(t *testing.T) {
	rng := xrand.New(21)
	net := NewMLP(rng, Tanh, 0.1, 6, 30, 48, 3)
	c := net.Compile()
	if c == nil {
		t.Fatal("Compile returned nil for a Dense/Dropout network")
	}
	if in, out := c.Dims(); in != 6 || out != 3 {
		t.Fatalf("compiled dims %d→%d, want 6→3", in, out)
	}
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.Range(-2, 2)
		}
		want := net.Predict(x)
		got := c.Predict(x, nil)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-12 {
				t.Fatalf("trial %d output %d: compiled %g vs layer-graph %g", trial, j, got[j], want[j])
			}
		}
	}
}

// TestCompiledSnapshotSemantics checks that a compiled program is a true
// weight snapshot: training the source network does not change it.
func TestCompiledSnapshotSemantics(t *testing.T) {
	rng := xrand.New(22)
	net := NewMLP(rng, Tanh, 0, 3, 12, 2)
	x := tensor.NewMatrix(8, 3)
	y := tensor.NewMatrix(8, 2)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	for i := range y.Data {
		y.Data[i] = rng.Range(-1, 1)
	}
	c := net.Compile()
	probe := []float64{0.4, -0.1, 0.7}
	before := c.Predict(probe, nil)
	if _, err := net.Fit(x, y, TrainConfig{Epochs: 20, BatchSize: 4, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	after := c.Predict(probe, nil)
	for j := range before {
		if after[j] != before[j] {
			t.Fatal("training the source network mutated the compiled program")
		}
	}
	moved := net.Predict(probe)
	same := true
	for j := range before {
		if moved[j] != before[j] {
			same = false
		}
	}
	if same {
		t.Fatal("source did not move after training; snapshot test vacuous")
	}
}

// TestCompiledPredictZeroAlloc pins the tentpole contract: a warmed
// compiled single-query forward with a caller-provided dst allocates
// nothing.
func TestCompiledPredictZeroAlloc(t *testing.T) {
	skipAllocCheckUnderRace(t)
	rng := xrand.New(23)
	net := NewMLP(rng, Tanh, 0.1, 6, 30, 48, 3)
	c := net.Compile()
	x := []float64{0.1, -0.3, 0.8, 0.2, -0.5, 0.9}
	dst := make([]float64, 3)
	c.Predict(x, dst) // warm the ctx pool
	if allocs := testing.AllocsPerRun(100, func() { c.Predict(x, dst) }); allocs != 0 {
		t.Fatalf("compiled Predict allocates %g times per query, want 0", allocs)
	}
}

// TestCompiledPredictMCZeroAlloc pins the same contract for the MC-dropout
// UQ path with caller-provided accumulators.
func TestCompiledPredictMCZeroAlloc(t *testing.T) {
	skipAllocCheckUnderRace(t)
	rng := xrand.New(24)
	net := NewMLP(rng, Tanh, 0.2, 6, 30, 3)
	c := net.Compile()
	x := []float64{0.1, -0.3, 0.8, 0.2, -0.5, 0.9}
	mean := make([]float64, 3)
	std := make([]float64, 3)
	c.PredictMC(x, 10, mean, std)
	if allocs := testing.AllocsPerRun(100, func() { c.PredictMC(x, 10, mean, std) }); allocs != 0 {
		t.Fatalf("compiled PredictMC allocates %g times per query, want 0", allocs)
	}
}

// TestCompiledPredictMCStats checks the MC statistics: deterministic
// programs collapse to the eval output with exactly zero std, dropout
// programs report positive spread.
func TestCompiledPredictMCStats(t *testing.T) {
	rng := xrand.New(25)
	det := NewMLP(rng, Tanh, 0, 4, 16, 2).Compile()
	x := []float64{0.3, -0.2, 0.5, 0.1}
	mean, std := det.PredictMC(x, 20, nil, nil)
	want := det.Predict(x, nil)
	for j := range want {
		if mean[j] != want[j] {
			t.Fatalf("deterministic MC mean %g differs from eval %g", mean[j], want[j])
		}
		if std[j] != 0 {
			t.Fatalf("deterministic MC std %g, want exactly 0", std[j])
		}
	}
	drop := NewMLP(rng, Tanh, 0.2, 4, 32, 2).Compile()
	_, std = drop.PredictMC(x, 40, nil, nil)
	for j, v := range std {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("dropout MC std[%d] = %g, want > 0", j, v)
		}
	}
}

// TestCompiledConcurrent hammers one compiled program from many
// goroutines (run under -race): contexts are pooled per call, so
// concurrent queries must not interfere.
func TestCompiledConcurrent(t *testing.T) {
	rng := xrand.New(26)
	net := NewMLP(rng, Tanh, 0.1, 4, 24, 2)
	c := net.Compile()
	x := []float64{0.2, -0.4, 0.6, 0.1}
	want := c.Predict(x, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, 2)
			mean := make([]float64, 2)
			std := make([]float64, 2)
			for i := 0; i < 200; i++ {
				c.Predict(x, dst)
				for j := range want {
					if dst[j] != want[j] {
						panic("concurrent compiled Predict returned wrong value")
					}
				}
				c.PredictMC(x, 5, mean, std)
			}
		}()
	}
	wg.Wait()
}

// TestCompileRejectsUnknownLayer checks the fallback contract: programs
// with layers outside the Dense/Dropout vocabulary do not compile.
func TestCompileRejectsUnknownLayer(t *testing.T) {
	rng := xrand.New(27)
	net := NewNetwork(rng, NewDense(2, 2, Tanh, rng), fakeLayer{})
	if net.Compile() != nil {
		t.Fatal("Compile accepted an unknown layer type")
	}
}

type fakeLayer struct{}

func (fakeLayer) Forward(x *tensor.Matrix, training bool, rng *xrand.Rand) *tensor.Matrix {
	return x
}
func (fakeLayer) Backward(g *tensor.Matrix) *tensor.Matrix { return g }
func (fakeLayer) Params() []ParamPair                      { return nil }
