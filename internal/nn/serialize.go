package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/xrand"
)

// layerSpec is the on-wire form of one layer.
type layerSpec struct {
	Kind    string // "dense" | "dropout"
	In, Out int
	Act     Activation
	W, B    []float64
	P       float64
}

// netSpec is the on-wire form of a Network.
type netSpec struct {
	Layers []layerSpec
}

// Save writes the network architecture and weights to w using encoding/gob.
// Optimizer state and cached activations are not persisted.
func (n *Network) Save(w io.Writer) error {
	spec := netSpec{}
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			spec.Layers = append(spec.Layers, layerSpec{
				Kind: "dense", In: layer.In, Out: layer.Out, Act: layer.Act,
				W: append([]float64(nil), layer.W.Data...),
				B: append([]float64(nil), layer.B.Data...),
			})
		case *Dropout:
			spec.Layers = append(spec.Layers, layerSpec{Kind: "dropout", P: layer.P})
		default:
			return fmt.Errorf("nn: cannot serialize layer type %T", l)
		}
	}
	return gob.NewEncoder(w).Encode(spec)
}

// Load reads a network previously written by Save. The supplied rng powers
// dropout masks for MC inference on the restored model. The payload is
// fully validated — geometry, weight lengths, activation and dropout
// ranges — so a corrupt stream fails closed here instead of panicking
// later in Compile or NewDense.
func Load(r io.Reader, rng *xrand.Rand) (*Network, error) {
	var spec netSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	return buildNetwork(spec.Layers, rng)
}

// buildNetwork validates a deserialized layer-spec list (from gob or the
// binary artifact format) and constructs the network. Nothing in specs is
// trusted: dimensions must be positive and consistent along the layer
// chain, weight/bias lengths must match the declared geometry, the
// activation must be a known one and dropout P must be in [0, 1).
func buildNetwork(specs []layerSpec, rng *xrand.Rand) (*Network, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("nn: load: network has no layers")
	}
	var layers []Layer
	width := -1 // activation width flowing into the next layer; -1 until the first dense
	for i, ls := range specs {
		switch ls.Kind {
		case "dense":
			if ls.In <= 0 || ls.Out <= 0 {
				return nil, fmt.Errorf("nn: load: layer %d has non-positive dims %dx%d", i, ls.In, ls.Out)
			}
			if ls.Act < Identity || ls.Act > Sigmoid {
				return nil, fmt.Errorf("nn: load: layer %d has unknown activation %d", i, ls.Act)
			}
			if len(ls.W) != ls.In*ls.Out || len(ls.B) != ls.Out {
				return nil, fmt.Errorf("nn: load: layer %d weight size mismatch (W %d want %d, B %d want %d)",
					i, len(ls.W), ls.In*ls.Out, len(ls.B), ls.Out)
			}
			if width >= 0 && width != ls.In {
				return nil, fmt.Errorf("nn: load: layer %d fan-in %d breaks width chain %d", i, ls.In, width)
			}
			d := NewDense(ls.In, ls.Out, ls.Act, rng)
			copy(d.W.Data, ls.W)
			copy(d.B.Data, ls.B)
			layers = append(layers, d)
			width = ls.Out
		case "dropout":
			if !(ls.P >= 0 && ls.P < 1) {
				return nil, fmt.Errorf("nn: load: layer %d dropout P %v out of range [0, 1)", i, ls.P)
			}
			layers = append(layers, NewDropout(ls.P))
		default:
			return nil, fmt.Errorf("nn: load: unknown layer kind %q", ls.Kind)
		}
	}
	return NewNetwork(rng, layers...), nil
}

// CloneArchitecture builds a freshly initialized network with the same
// architecture as n, using rng for the new weights. Used by active
// learning retraining and ensembles.
func (n *Network) CloneArchitecture(rng *xrand.Rand) *Network {
	var layers []Layer
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			layers = append(layers, NewDense(layer.In, layer.Out, layer.Act, rng))
		case *Dropout:
			layers = append(layers, NewDropout(layer.P))
		default:
			panic(fmt.Sprintf("nn: cannot clone layer type %T", l))
		}
	}
	return NewNetwork(rng, layers...)
}

// Snapshot returns an independent deep copy of the network: the same
// architecture and current weights, fresh workspaces, and its own
// deterministic dropout-rng stream derived from the parent. The copy
// shares no mutable state with the original, so one side can train (or be
// discarded) while the other serves — the publication primitive behind
// double-buffered surrogate serving. Like all inference entry points it
// must not race with concurrent training on the source network.
func (n *Network) Snapshot() *Network {
	c := n.CloneArchitecture(xrand.New(n.predictorSeed()))
	if err := c.CopyWeightsFrom(n); err != nil {
		panic(fmt.Sprintf("nn: snapshot of own architecture failed: %v", err))
	}
	return c
}

// CopyWeightsFrom copies parameter values from src into n; architectures
// must match exactly.
func (n *Network) CopyWeightsFrom(src *Network) error {
	dst := n.Params()
	s := src.Params()
	if len(dst) != len(s) {
		return fmt.Errorf("nn: parameter group count mismatch %d vs %d", len(dst), len(s))
	}
	for i := range dst {
		if dst[i].Value.Rows != s[i].Value.Rows || dst[i].Value.Cols != s[i].Value.Cols {
			return fmt.Errorf("nn: parameter %d shape mismatch", i)
		}
		copy(dst[i].Value.Data, s[i].Value.Data)
	}
	return nil
}
