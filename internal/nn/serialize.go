package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/xrand"
)

// layerSpec is the on-wire form of one layer.
type layerSpec struct {
	Kind    string // "dense" | "dropout"
	In, Out int
	Act     Activation
	W, B    []float64
	P       float64
}

// netSpec is the on-wire form of a Network.
type netSpec struct {
	Layers []layerSpec
}

// Save writes the network architecture and weights to w using encoding/gob.
// Optimizer state and cached activations are not persisted.
func (n *Network) Save(w io.Writer) error {
	spec := netSpec{}
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			spec.Layers = append(spec.Layers, layerSpec{
				Kind: "dense", In: layer.In, Out: layer.Out, Act: layer.Act,
				W: append([]float64(nil), layer.W.Data...),
				B: append([]float64(nil), layer.B.Data...),
			})
		case *Dropout:
			spec.Layers = append(spec.Layers, layerSpec{Kind: "dropout", P: layer.P})
		default:
			return fmt.Errorf("nn: cannot serialize layer type %T", l)
		}
	}
	return gob.NewEncoder(w).Encode(spec)
}

// Load reads a network previously written by Save. The supplied rng powers
// dropout masks for MC inference on the restored model.
func Load(r io.Reader, rng *xrand.Rand) (*Network, error) {
	var spec netSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	var layers []Layer
	for i, ls := range spec.Layers {
		switch ls.Kind {
		case "dense":
			if len(ls.W) != ls.In*ls.Out || len(ls.B) != ls.Out {
				return nil, fmt.Errorf("nn: load: layer %d weight size mismatch", i)
			}
			d := NewDense(ls.In, ls.Out, ls.Act, rng)
			copy(d.W.Data, ls.W)
			copy(d.B.Data, ls.B)
			layers = append(layers, d)
		case "dropout":
			layers = append(layers, NewDropout(ls.P))
		default:
			return nil, fmt.Errorf("nn: load: unknown layer kind %q", ls.Kind)
		}
	}
	return NewNetwork(rng, layers...), nil
}

// CloneArchitecture builds a freshly initialized network with the same
// architecture as n, using rng for the new weights. Used by active
// learning retraining and ensembles.
func (n *Network) CloneArchitecture(rng *xrand.Rand) *Network {
	var layers []Layer
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			layers = append(layers, NewDense(layer.In, layer.Out, layer.Act, rng))
		case *Dropout:
			layers = append(layers, NewDropout(layer.P))
		default:
			panic(fmt.Sprintf("nn: cannot clone layer type %T", l))
		}
	}
	return NewNetwork(rng, layers...)
}

// Snapshot returns an independent deep copy of the network: the same
// architecture and current weights, fresh workspaces, and its own
// deterministic dropout-rng stream derived from the parent. The copy
// shares no mutable state with the original, so one side can train (or be
// discarded) while the other serves — the publication primitive behind
// double-buffered surrogate serving. Like all inference entry points it
// must not race with concurrent training on the source network.
func (n *Network) Snapshot() *Network {
	c := n.CloneArchitecture(xrand.New(n.predictorSeed()))
	if err := c.CopyWeightsFrom(n); err != nil {
		panic(fmt.Sprintf("nn: snapshot of own architecture failed: %v", err))
	}
	return c
}

// CopyWeightsFrom copies parameter values from src into n; architectures
// must match exactly.
func (n *Network) CopyWeightsFrom(src *Network) error {
	dst := n.Params()
	s := src.Params()
	if len(dst) != len(s) {
		return fmt.Errorf("nn: parameter group count mismatch %d vs %d", len(dst), len(s))
	}
	for i := range dst {
		if dst[i].Value.Rows != s[i].Value.Rows || dst[i].Value.Cols != s[i].Value.Cols {
			return fmt.Errorf("nn: parameter %d shape mismatch", i)
		}
		copy(dst[i].Value.Data, s[i].Value.Data)
	}
	return nil
}
