package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// buildArtifact trains a small dropout MLP, compiles and quantizes it,
// and returns the encoded artifact alongside the live programs.
func buildArtifact(t *testing.T, seed uint64) (*Artifact, []byte) {
	t.Helper()
	net, calib := trainQuantNet(t, seed, Tanh, 0.1, 3, 16, 2)
	c := net.CompileBatch(32)
	if c == nil {
		t.Fatal("compile failed")
	}
	q := c.Quantize(calib)
	if q == nil {
		t.Fatal("quantize failed")
	}
	a := &Artifact{Meta: []byte("meta-payload"), Net: net, Compiled: c, Quant: q}
	data, err := EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	return a, data
}

// The headline round-trip property the registry warm-start relies on:
// a decoded artifact serves bit-identical deterministic predictions to
// the programs that were encoded, for both the float and the quantized
// compiled forms, with no recompilation or recalibration.
func TestArtifactRoundTripBitIdentical(t *testing.T) {
	a, data := buildArtifact(t, 11)
	if err := VerifyArtifact(data); err != nil {
		t.Fatalf("verify: %v", err)
	}
	got, err := DecodeArtifact(data, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Meta) != "meta-payload" {
		t.Fatalf("meta round-trip: %q", got.Meta)
	}
	if got.Compiled == nil || got.Quant == nil {
		t.Fatal("decoded artifact lost a compiled program")
	}
	if got.Quant.GateBound() != a.Quant.GateBound() ||
		got.Quant.ErrorBound() != a.Quant.ErrorBound() ||
		got.Quant.CalibratedError() != a.Quant.CalibratedError() {
		t.Fatalf("quant error figures drifted: gate %v vs %v", got.Quant.GateBound(), a.Quant.GateBound())
	}
	rng := xrand.New(7)
	x := make([]float64, 3)
	want := make([]float64, 2)
	have := make([]float64, 2)
	qwant := make([]float64, 2)
	qhave := make([]float64, 2)
	for trial := 0; trial < 200; trial++ {
		for j := range x {
			x[j] = rng.Range(-1.5, 1.5)
		}
		a.Compiled.Predict(x, want)
		got.Compiled.Predict(x, have)
		for j := range want {
			if want[j] != have[j] {
				t.Fatalf("float predict diverged at %d: %v vs %v", j, want[j], have[j])
			}
		}
		_, okW := a.Quant.Predict(x, qwant)
		_, okH := got.Quant.Predict(x, qhave)
		if okW != okH {
			t.Fatalf("quant clip flag diverged")
		}
		for j := range qwant {
			if qwant[j] != qhave[j] {
				t.Fatalf("quant predict diverged at %d: %v vs %v", j, qwant[j], qhave[j])
			}
		}
	}
	// The restored Network is an independent trainable copy with the same
	// weights: its interpreted prediction matches the compiled program.
	out := got.Net.Predict(x)
	a.Compiled.Predict(x, want)
	for j := range want {
		if math.Abs(out[j]-want[j]) > 1e-12 {
			t.Fatalf("network weights drifted: %v vs %v", out[j], want[j])
		}
	}
}

// Batch entry points of the decoded programs must work off the pooled
// scratch rebuilt at decode time (maxW/fs/maxBatch are recomputed, not
// trusted from the payload).
func TestArtifactDecodedBatchServing(t *testing.T) {
	a, data := buildArtifact(t, 23)
	got, err := DecodeArtifact(data, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	xs := tensor.NewMatrix(70, 3) // > maxBatch=32: forces chunking
	for i := range xs.Data {
		xs.Data[i] = rng.Range(-1.5, 1.5)
	}
	want := a.Compiled.PredictBatch(xs, nil)
	have := got.Compiled.PredictBatch(xs, nil)
	for i := range want.Data {
		if want.Data[i] != have.Data[i] {
			t.Fatalf("batch predict diverged at %d", i)
		}
	}
	okq := make([]bool, xs.Rows)
	qw := a.Quant.PredictBatch(xs, nil, nil)
	qh := got.Quant.PredictBatch(xs, nil, okq)
	for i := range qw.Data {
		if qw.Data[i] != qh.Data[i] {
			t.Fatalf("quant batch predict diverged at %d", i)
		}
	}
	mean, std := got.Compiled.PredictMCBatch(xs, 8, nil, nil)
	if mean.Rows != xs.Rows || std.Rows != xs.Rows {
		t.Fatal("MC batch shape")
	}
}

// Corrupting any single byte of the artifact must be detected by
// VerifyArtifact (CRC) or rejected by DecodeArtifact — never panic,
// never decode to a silently wrong program that served.
func TestArtifactBitFlipDetected(t *testing.T) {
	_, data := buildArtifact(t, 31)
	// Sample positions across the whole blob (every byte would be slow).
	for pos := 0; pos < len(data); pos += 7 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		vErr := VerifyArtifact(mut)
		_, dErr := DecodeArtifact(mut, xrand.New(1))
		if vErr == nil && dErr == nil {
			// A flip inside padding or a reserved field can be benign;
			// it must then decode to a program serving identical outputs.
			a, _ := DecodeArtifact(data, xrand.New(1))
			b, _ := DecodeArtifact(mut, xrand.New(1))
			x := []float64{0.3, -0.7, 0.9}
			av := a.Compiled.Predict(x, nil)
			bv := b.Compiled.Predict(x, nil)
			for j := range av {
				if av[j] != bv[j] {
					t.Fatalf("flip at %d undetected but changed output", pos)
				}
			}
		}
	}
}

// Truncations at every length must fail closed.
func TestArtifactTruncationDetected(t *testing.T) {
	_, data := buildArtifact(t, 41)
	for n := 0; n < len(data); n += 13 {
		if err := VerifyArtifact(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes passed verification", n)
		}
		if _, err := DecodeArtifact(data[:n], xrand.New(1)); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
}

// Version skew fails closed: a decoder must not guess at a future format.
func TestArtifactVersionSkew(t *testing.T) {
	_, data := buildArtifact(t, 51)
	mut := append([]byte(nil), data...)
	mut[4] = byte(ArtifactVersion + 1)
	if err := VerifyArtifact(mut); err == nil {
		t.Fatal("future version passed verification")
	}
}

// Load must reject corrupt geometry instead of panicking later.
func TestLoadValidatesGeometry(t *testing.T) {
	rng := xrand.New(1)
	cases := []struct {
		name string
		spec netSpec
	}{
		{"no layers", netSpec{}},
		{"non-positive dims", netSpec{Layers: []layerSpec{{Kind: "dense", In: 0, Out: 4, W: nil, B: make([]float64, 4)}}}},
		{"negative dims", netSpec{Layers: []layerSpec{{Kind: "dense", In: 3, Out: -2}}}},
		{"W length mismatch", netSpec{Layers: []layerSpec{{Kind: "dense", In: 2, Out: 2, W: make([]float64, 3), B: make([]float64, 2)}}}},
		{"B length mismatch", netSpec{Layers: []layerSpec{{Kind: "dense", In: 2, Out: 2, W: make([]float64, 4), B: make([]float64, 1)}}}},
		{"bad activation", netSpec{Layers: []layerSpec{{Kind: "dense", In: 2, Out: 2, Act: 9, W: make([]float64, 4), B: make([]float64, 2)}}}},
		{"dropout P high", netSpec{Layers: []layerSpec{{Kind: "dropout", P: 1.0}}}},
		{"dropout P NaN", netSpec{Layers: []layerSpec{{Kind: "dropout", P: math.NaN()}}}},
		{"broken width chain", netSpec{Layers: []layerSpec{
			{Kind: "dense", In: 2, Out: 3, W: make([]float64, 6), B: make([]float64, 3)},
			{Kind: "dense", In: 4, Out: 1, W: make([]float64, 4), B: make([]float64, 1)},
		}}},
	}
	for _, tc := range cases {
		if _, err := buildNetwork(tc.spec.Layers, rng); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// FuzzArtifactDecode hammers the decoder with truncated, bit-flipped and
// version-skewed inputs (the same pattern as netserve's
// FuzzParseRequest): whatever the bytes, decode must return cleanly —
// error or valid artifact — and never panic or over-allocate.
func FuzzArtifactDecode(f *testing.F) {
	net := NewMLP(xrand.New(5), Tanh, 0.1, 2, 8, 1)
	c := net.Compile()
	q := c.Quantize(nil)
	valid, err := EncodeArtifact(&Artifact{Meta: []byte("m"), Net: net, Compiled: c, Quant: q})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:17])
	f.Add([]byte{})
	skew := append([]byte(nil), valid...)
	skew[4] = 0xFF
	f.Add(skew)
	for _, pos := range []int{0, 8, 20, 40, 64, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0xA5
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifact(data, xrand.New(1))
		if err != nil {
			return
		}
		// A successful decode must yield a servable program set.
		if a.Net == nil {
			t.Fatal("decode succeeded without a network")
		}
		if a.Compiled != nil {
			in, _ := a.Compiled.Dims()
			a.Compiled.Predict(make([]float64, in), nil)
		}
		if a.Quant != nil {
			in, _ := a.Quant.Dims()
			a.Quant.Predict(make([]float64, in), nil)
		}
	})
}
