package nn

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// This file implements the int8 quantized execution mode of the compiled
// inference engine. A QuantCompiled program is derived from a float
// Compiled program: every dense step's weight panel is quantized to the
// symmetric 7-bit grid with per-output-channel scales (bias kept in
// float) and packed for the SWAR sweep kernel, and every hidden layer
// with a bounded activation (Tanh/Sigmoid) runs a fully integer
// dequant+bias+activation+requant epilogue — the hot path touches no
// floats between the input quantization and the final layer. The same
// pooled ping-pong contexts as the float program keep Predict and
// PredictBatch at zero heap allocations.
//
// Quantization is an approximation, so every program carries two error
// figures in scaled-output units:
//
//   - ErrorBound: a worst-case interval bound propagated layer by layer
//     at quantize time (weight rounding × activation envelope + input
//     rounding × column mass + the measured epilogue error). It is
//     guaranteed for any input inside the calibrated envelope; the
//     property tests enforce it.
//   - CalibratedError: the observed max |quantized − float| over the
//     calibration slice — the realistic figure serving uses to size the
//     UQ guardrail band (GateBound).
//
// Inputs are quantized with a FIXED scale chosen from the calibration
// slice (so the integer epilogue coefficients can be precomputed once).
// An input outside that envelope clips; every entry point reports it so
// callers can re-run the retained float program instead of silently
// serving a degraded answer.

// quantAct describes the LUT domain for a bounded activation: outside
// [lo, hi] the function is flat at the resolution of the 1/63 grid.
func quantActDomain(a Activation) (lo, hi float64, ok bool) {
	switch a {
	case Tanh:
		return -4, 4, true
	case Sigmoid:
		return -8, 8, true
	}
	return 0, 0, false
}

// quantLip is the Lipschitz constant of an activation, used by the
// interval error propagation.
func quantLip(a Activation) float64 {
	if a == Sigmoid {
		return 0.25
	}
	return 1 // Identity, ReLU, Tanh
}

// quantEpiErr is the measured worst-case error of the fused integer
// epilogue (index affine + LUT interpolation + requant rounding) in
// steps of the 1/QuantMax grid; see TestQuantEpilogueError, which
// asserts 0.75 against a measured 0.52.
const quantEpiErr = 0.8

// quantStep is one stage of a quantized program. Hidden dense steps are
// "fused": their epilogue maps raw int32 accumulators straight to the
// next layer's int8 activations through a fixed-point LUT. The final
// dense step dequantizes to float64 and applies its activation exactly.
type quantStep struct {
	kind    stepKind
	in, out int
	panel   tensor.QuantPanel
	wscale  []float64 // per-output-channel weight scales (grid step size)
	b       []float64
	act     Activation
	p       float64 // dropout probability (stepDropout only)

	fused        bool
	lut          *tensor.QuantLUT
	aF, cF       []float64 // eval-mode LUT index coefficients
	aFmc         []float64 // MC-mode: dropout survivor scaling folded in
	sEff, sEffMC []float64 // final-step float dequant scales
}

// QuantCompiled is an immutable int8 inference program derived from a
// Compiled float program via Quantize. Like Compiled it is safe for
// concurrent use and its warmed entry points allocate nothing.
type QuantCompiled struct {
	in, out  int
	steps    []quantStep
	fs       int // first stochastic step (live dropout), -1 if none
	maxW     int
	inScale  float64 // input units per grid step (envelope/QuantMax)
	invIn    float64 // QuantMax/envelope
	bound    []float64
	boundMax float64
	calErr   float64
	gate     float64
	seedBase uint64
	seedCtr  atomic.Uint64
	pool     sync.Pool // *quantCtx
}

// quantCtx owns the per-call scratch of one in-flight quantized
// inference: int8 ping-pong activation buffers, the packed-word and
// accumulator scratch the sweep kernel needs, the parked MC prefix, and
// the float reduction buffers.
type quantCtx struct {
	qbuf [2][]int8
	pre  []int8
	ux   []uint64
	acc  []int32
	out  []float64
	ref  []float64
	sum  []float64
	ssq  []float64
	rng  *xrand.Rand
}

// Quantize derives an int8 program from the compiled float program,
// calibrating against calib (rows of scaled model inputs — typically a
// held-out slice of the training window). The calibration slice fixes
// the input quantization envelope (max |x| with a 25% margin) and
// measures the observed quantization error that sizes the serving
// guardrail band; the analytic worst-case bound is computed regardless.
// calib may be nil, in which case a generic ±8 envelope is assumed and
// the guardrail band falls back to the analytic bound.
//
// Quantization requires every hidden dense activation to be bounded
// (Tanh or Sigmoid — what gives the fixed requant grid its meaning) and
// the program to end on a dense step; otherwise Quantize returns nil
// and callers keep serving the float program. The derivation is
// deterministic: identical float programs yield bit-identical panels
// and scales, which is what the serialized-artifact round-trip relies
// on.
func (c *Compiled) Quantize(calib *tensor.Matrix) *QuantCompiled {
	ld := -1 // last dense step
	for si := range c.steps {
		if c.steps[si].kind == stepDense {
			ld = si
		}
	}
	if ld != len(c.steps)-1 {
		return nil // program must end on a dense step
	}
	for si := range c.steps {
		st := &c.steps[si]
		if st.kind != stepDense || si == ld {
			continue
		}
		if _, _, ok := quantActDomain(st.act); !ok {
			return nil // unbounded hidden activation: no fixed requant grid
		}
	}

	env := 8.0
	if calib != nil && calib.Rows > 0 {
		m := 0.0
		for _, v := range calib.Data {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		// 25% margin so near-envelope serving inputs don't clip; a
		// floor keeps a degenerate all-zero slice from collapsing the
		// grid.
		env = math.Max(m*1.25, 1e-6)
	}

	q := &QuantCompiled{
		in: c.in, out: c.out,
		fs: c.fs, maxW: c.maxW,
		inScale:  env / tensor.QuantMax,
		invIn:    tensor.QuantMax / env,
		seedBase: c.seedBase,
	}

	luts := map[Activation]*tensor.QuantLUT{}

	// Interval error propagation state, all in real (scaled) units:
	// E bounds |dequantized − float| of the current activations, X
	// bounds their float magnitude, pending accumulates dropout
	// survivor scaling folded into the next dense step.
	E := 0.5 * q.inScale
	X := env
	pending := 1.0
	firstDense := true

	for si := range c.steps {
		st := &c.steps[si]
		if st.kind == stepDropout {
			if st.p > 0 {
				pending *= 1 / (1 - st.p)
			}
			q.steps = append(q.steps, quantStep{kind: stepDropout, p: st.p})
			continue
		}
		in, out := st.in, st.out
		dm := pending
		pending = 1

		// Per-output-channel symmetric quantization of the weight
		// panel; column j's grid step is maxabs_j/QuantMax.
		q8 := make([]int8, in*out)
		wscale := make([]float64, out)
		colAbs := make([]float64, out)
		for j := 0; j < out; j++ {
			m := 0.0
			for i := 0; i < in; i++ {
				a := math.Abs(st.w[i*out+j])
				colAbs[j] += a
				if a > m {
					m = a
				}
			}
			wscale[j] = m / tensor.QuantMax
		}
		for i := 0; i < in; i++ {
			for j := 0; j < out; j++ {
				if wscale[j] == 0 {
					continue
				}
				v := math.Round(st.w[i*out+j] / wscale[j])
				if v > tensor.QuantMax {
					v = tensor.QuantMax
				} else if v < -tensor.QuantMax {
					v = -tensor.QuantMax
				}
				q8[i*out+j] = int8(v)
			}
		}

		qs := quantStep{
			kind: stepDense, in: in, out: out,
			panel:  tensor.PackQuantPanel(q8, in, out),
			wscale: wscale,
			b:      append([]float64(nil), st.b...),
			act:    st.act,
		}

		// The input grid step of this dense: env/63 at the program
		// input, 1/63 after any bounded hidden activation.
		sx := q.inScale
		if !firstDense {
			sx = 1.0 / tensor.QuantMax
		}
		firstDense = false

		// Pre-activation error of channel j: weight rounding times the
		// activation envelope plus input rounding times the column
		// mass, both scaled by the folded dropout multiplier (the
		// float path scales survivors by the same factor).
		zmax := 0.0
		z := make([]float64, out)
		for j := 0; j < out; j++ {
			z[j] = dm * (0.5*wscale[j]*float64(in)*X + E*colAbs[j])
			if z[j] > zmax {
				zmax = z[j]
			}
		}

		if si == ld {
			qs.sEff = make([]float64, out)
			qs.sEffMC = make([]float64, out)
			for j := 0; j < out; j++ {
				qs.sEff[j] = sx * wscale[j]
				qs.sEffMC[j] = sx * wscale[j] * dm
			}
			lip := quantLip(st.act)
			q.bound = make([]float64, out)
			for j := 0; j < out; j++ {
				q.bound[j] = lip*z[j] + 1e-12
				if q.bound[j] > q.boundMax {
					q.boundMax = q.bound[j]
				}
			}
		} else {
			lo, hi, _ := quantActDomain(st.act)
			lut := luts[st.act]
			if lut == nil {
				lut = tensor.BuildQuantLUT(st.act.apply, lo, hi)
				luts[st.act] = lut
			}
			qs.fused = true
			qs.lut = lut
			qs.aF = make([]float64, out)
			qs.cF = make([]float64, out)
			qs.aFmc = make([]float64, out)
			for j := 0; j < out; j++ {
				aF, cF := tensor.QuantIndexCoeffs(sx*wscale[j], st.b[j], lo, hi)
				aFmc, _ := tensor.QuantIndexCoeffs(sx*wscale[j]*dm, st.b[j], lo, hi)
				qs.aF[j] = aF
				qs.cF[j] = cF
				qs.aFmc[j] = aFmc
			}
			E = quantLip(st.act)*zmax + quantEpiErr/tensor.QuantMax
			X = 1 // bounded activation amplitude
		}
		q.steps = append(q.steps, qs)
	}

	q.gate = q.boundMax
	if calib != nil && calib.Rows > 0 {
		q.calErr = q.measureCalibError(c, calib)
		// The guardrail band is sized from observed error with an 8x
		// safety factor, capped by the guaranteed bound — tight enough
		// that fallbacks stay rare, wide enough that a decision flip
		// inside the band is implausible.
		if g := 8 * q.calErr; g < q.gate {
			q.gate = g
		}
	}
	return q
}

// measureCalibError runs the calibration slice through both programs
// and returns the max abs output delta in scaled units.
func (q *QuantCompiled) measureCalibError(c *Compiled, calib *tensor.Matrix) float64 {
	qout := make([]float64, q.out)
	fout := make([]float64, q.out)
	maxd := 0.0
	for r := 0; r < calib.Rows; r++ {
		row := calib.Row(r)
		q.Predict(row, qout)
		c.Predict(row, fout)
		for j := range qout {
			if d := math.Abs(qout[j] - fout[j]); d > maxd {
				maxd = d
			}
		}
	}
	return maxd
}

// Dims returns the program's input and output widths.
func (q *QuantCompiled) Dims() (in, out int) { return q.in, q.out }

// ErrorBound returns the guaranteed worst-case |quantized − float|
// output delta in scaled units, valid for any input inside the
// calibrated envelope (largest across output channels).
func (q *QuantCompiled) ErrorBound() float64 { return q.boundMax }

// ErrorBounds returns the per-output-channel guaranteed bounds.
func (q *QuantCompiled) ErrorBounds() []float64 { return q.bound }

// CalibratedError returns the max |quantized − float| observed on the
// calibration slice (0 when quantized without one).
func (q *QuantCompiled) CalibratedError() float64 { return q.calErr }

// GateBound returns the serving guardrail half-width in scaled units:
// when a UQ decision lands within this distance of its threshold the
// quantization delta could plausibly flip it and the caller should
// re-run the float program. It is min(ErrorBound, 8×CalibratedError).
func (q *QuantCompiled) GateBound() float64 { return q.gate }

// getCtx leases a warm context, minting one with a fresh deterministic
// rng substream on pool miss.
func (q *QuantCompiled) getCtx() *quantCtx {
	if ctx, ok := q.pool.Get().(*quantCtx); ok {
		return ctx
	}
	return &quantCtx{
		qbuf: [2][]int8{make([]int8, q.maxW), make([]int8, q.maxW)},
		pre:  make([]int8, q.maxW),
		ux:   make([]uint64, q.maxW),
		acc:  make([]int32, q.maxW),
		out:  make([]float64, q.out),
		ref:  make([]float64, q.out),
		sum:  make([]float64, q.out),
		ssq:  make([]float64, q.out),
		rng:  xrand.New(q.seedBase + q.seedCtr.Add(1)*0x9e3779b97f4a7c15),
	}
}

// run executes steps [lo,hi) on the int8 activations cur, ping-ponging
// through ctx.qbuf starting at side. The final dense step dequantizes
// into dst; fused steps stay on the int8 grid throughout. mc toggles
// dropout sampling and the MC variants of the epilogue coefficients
// (which carry the survivor scaling). Dropout masks cur in place, so MC
// callers replay from a parked copy of the prefix.
func (q *QuantCompiled) run(ctx *quantCtx, cur []int8, side, lo, hi int, mc bool, dst []float64) {
	for si := lo; si < hi; si++ {
		st := &q.steps[si]
		switch st.kind {
		case stepDense:
			acc := ctx.acc[:st.out]
			st.panel.Sweep(acc, cur, ctx.ux)
			if st.fused {
				out := ctx.qbuf[side][:st.out]
				aF := st.aF
				if mc {
					aF = st.aFmc
				}
				tensor.QuantEpilogue(out, acc, aF, st.cF, st.lut)
				cur = out
				side = 1 - side
			} else {
				sEff := st.sEff
				if mc {
					sEff = st.sEffMC
				}
				if st.act == Identity {
					for j, a := range acc {
						dst[j] = float64(a)*sEff[j] + st.b[j]
					}
				} else {
					for j, a := range acc {
						dst[j] = st.act.apply(float64(a)*sEff[j] + st.b[j])
					}
				}
			}
		case stepDropout:
			if !mc || st.p == 0 {
				continue
			}
			keep := 1 - st.p
			for i := range cur {
				if ctx.rng.Float64() >= keep {
					cur[i] = 0
				}
			}
			// Survivor scaling is folded into the next dense step's
			// MC epilogue coefficients — the int8 grid never rescales.
		}
	}
}

func (q *QuantCompiled) checkIn(x []float64) {
	if len(x) != q.in {
		panic(fmt.Sprintf("nn: quantized program expects %d inputs, got %d", q.in, len(x)))
	}
}

// Predict runs one deterministic (eval-mode) quantized forward pass,
// writing the result into dst (len == out; nil allocates) and returning
// it together with ok=false when any input coordinate clipped against
// the calibrated envelope — the signal that the compile-time error
// bound does not cover this query and the caller should use the float
// program. With a caller-provided dst a warmed Predict performs zero
// heap allocations. Safe for concurrent use.
func (q *QuantCompiled) Predict(x, dst []float64) ([]float64, bool) {
	q.checkIn(x)
	if dst == nil {
		dst = make([]float64, q.out)
	} else if len(dst) != q.out {
		panic(fmt.Sprintf("nn: quantized dst len %d, want %d", len(dst), q.out))
	}
	ctx := q.getCtx()
	qx := ctx.qbuf[0][:q.in]
	clipped := tensor.QuantizeVec(qx, x, q.invIn)
	q.run(ctx, qx, 1, 0, len(q.steps), false, dst)
	q.pool.Put(ctx)
	return dst, !clipped
}

// PredictMC runs passes stochastic quantized evaluations (MC dropout)
// and writes the predictive mean and std into mean/std (len == out; nil
// allocates). The deterministic prefix is quantized and evaluated once,
// parked as int8, and replayed per pass; dropout masks zero grid
// entries in place (the sweep kernel recomputes its input-sum
// correction, so masking is exact) and the survivor scaling rides the
// precomputed MC epilogue coefficients. Variance accumulates as
// deviations from the first pass, matching the float path's numerics.
// ok=false reports input clipping as in Predict. With caller-provided
// buffers a warmed call allocates nothing. Safe for concurrent use.
func (q *QuantCompiled) PredictMC(x []float64, passes int, mean, std []float64) (m, s []float64, ok bool) {
	if passes < 1 {
		panic("nn: PredictMC needs at least one pass")
	}
	q.checkIn(x)
	if mean == nil {
		mean = make([]float64, q.out)
	}
	if std == nil {
		std = make([]float64, q.out)
	}
	if len(mean) != q.out || len(std) != q.out {
		panic("nn: quantized mean/std length mismatch")
	}
	ctx := q.getCtx()
	qx := ctx.qbuf[0][:q.in]
	clipped := tensor.QuantizeVec(qx, x, q.invIn)
	ok = !clipped
	if q.fs < 0 {
		q.run(ctx, qx, 1, 0, len(q.steps), false, mean)
		for k := range std {
			std[k] = 0
		}
		q.pool.Put(ctx)
		return mean, std, ok
	}
	q.mcFrom(ctx, qx, passes, mean, std)
	q.pool.Put(ctx)
	return mean, std, ok
}

// mcFrom runs the MC passes for one already-quantized input row held in
// ctx.qbuf[0][:q.in], reducing into mean/std.
func (q *QuantCompiled) mcFrom(ctx *quantCtx, qx []int8, passes int, mean, std []float64) {
	// Park the deterministic prefix so every pass replays it from an
	// unmasked copy (dropout zeroes the working buffer in place).
	var pre []int8
	if q.fs > 0 {
		q.runPrefix(ctx, qx)
		pre = ctx.pre[:q.prefixWidth()]
	} else {
		pre = ctx.pre[:len(qx)]
		copy(pre, qx)
	}
	ref, sum, ssq := ctx.ref, ctx.sum, ctx.ssq
	for k := range sum {
		sum[k] = 0
		ssq[k] = 0
	}
	out := ctx.out[:q.out]
	for t := 0; t < passes; t++ {
		cur := ctx.qbuf[0][:len(pre)]
		copy(cur, pre)
		q.run(ctx, cur, 1, q.fs, len(q.steps), true, out)
		if t == 0 {
			copy(ref, out)
			continue
		}
		for k, v := range out {
			d := v - ref[k]
			sum[k] += d
			ssq[k] += d * d
		}
	}
	invP := 1 / float64(passes)
	for k := range mean {
		d := sum[k] * invP
		mean[k] = ref[k] + d
		v := ssq[k]*invP - d*d
		if v < 0 {
			v = 0
		}
		std[k] = math.Sqrt(v)
	}
}

// prefixWidth returns the activation width entering step fs.
func (q *QuantCompiled) prefixWidth() int {
	w := q.in
	for si := 0; si < q.fs; si++ {
		if q.steps[si].kind == stepDense {
			w = q.steps[si].out
		}
	}
	return w
}

// runPrefix evaluates steps [0,fs) of the quantized input in ctx's
// buffers and parks the int8 result in ctx.pre.
func (q *QuantCompiled) runPrefix(ctx *quantCtx, qx []int8) {
	cur, side := qx, 1
	for si := 0; si < q.fs; si++ {
		st := &q.steps[si]
		if st.kind != stepDense {
			continue // eval-mode dropout is the identity
		}
		acc := ctx.acc[:st.out]
		st.panel.Sweep(acc, cur, ctx.ux)
		out := ctx.qbuf[side][:st.out]
		tensor.QuantEpilogue(out, acc, st.aF, st.cF, st.lut)
		cur = out
		side = 1 - side
	}
	copy(ctx.pre[:len(cur)], cur)
}

func (q *QuantCompiled) checkBatchIn(xs *tensor.Matrix) {
	if xs.Cols != q.in {
		panic(fmt.Sprintf("nn: quantized batch has %d cols, program wants %d", xs.Cols, q.in))
	}
}

// PredictBatch runs the deterministic quantized pass over every row of
// xs into dst (reshaped to xs.Rows x out; nil allocates). ok, when
// non-nil, must have xs.Rows entries and receives the per-row clipping
// verdict. Rows are served through the identical single-row path, so
// the batch result is bit-exact with xs.Rows separate Predict calls —
// the property the quantized batch tests pin down. With caller-provided
// buffers a warmed call allocates nothing. Safe for concurrent use.
func (q *QuantCompiled) PredictBatch(xs, dst *tensor.Matrix, ok []bool) *tensor.Matrix {
	q.checkBatchIn(xs)
	if dst == nil {
		dst = tensor.NewMatrix(xs.Rows, q.out)
	} else {
		dst.Reshape(xs.Rows, q.out)
	}
	if ok != nil && len(ok) != xs.Rows {
		panic("nn: quantized ok slice length mismatch")
	}
	ctx := q.getCtx()
	for r := 0; r < xs.Rows; r++ {
		qx := ctx.qbuf[0][:q.in]
		clipped := tensor.QuantizeVec(qx, xs.Data[r*q.in:(r+1)*q.in], q.invIn)
		if ok != nil {
			ok[r] = !clipped
		}
		q.run(ctx, qx, 1, 0, len(q.steps), false, dst.Data[r*q.out:(r+1)*q.out])
	}
	q.pool.Put(ctx)
	return dst
}

// PredictMCBatch runs passes MC-dropout quantized evaluations per row
// of xs, writing per-row predictive means and stds (reshaped to
// xs.Rows x out; nil allocates); ok as in PredictBatch. Unlike the
// float batch program there is no pass-stacked matmul to amortize —
// the SWAR kernel is already row-serial — so rows run through the
// single-row MC path back to back on one pooled context. With
// caller-provided buffers a warmed call allocates nothing. Safe for
// concurrent use.
func (q *QuantCompiled) PredictMCBatch(xs *tensor.Matrix, passes int, mean, std *tensor.Matrix, ok []bool) (m, s *tensor.Matrix) {
	if passes < 1 {
		panic("nn: PredictMCBatch needs at least one pass")
	}
	q.checkBatchIn(xs)
	if mean == nil {
		mean = tensor.NewMatrix(xs.Rows, q.out)
	} else {
		mean.Reshape(xs.Rows, q.out)
	}
	if std == nil {
		std = tensor.NewMatrix(xs.Rows, q.out)
	} else {
		std.Reshape(xs.Rows, q.out)
	}
	if ok != nil && len(ok) != xs.Rows {
		panic("nn: quantized ok slice length mismatch")
	}
	ctx := q.getCtx()
	for r := 0; r < xs.Rows; r++ {
		qx := ctx.qbuf[0][:q.in]
		clipped := tensor.QuantizeVec(qx, xs.Data[r*q.in:(r+1)*q.in], q.invIn)
		if ok != nil {
			ok[r] = !clipped
		}
		mrow := mean.Data[r*q.out : (r+1)*q.out]
		srow := std.Data[r*q.out : (r+1)*q.out]
		if q.fs < 0 {
			q.run(ctx, qx, 1, 0, len(q.steps), false, mrow)
			for k := range srow {
				srow[k] = 0
			}
			continue
		}
		q.mcFrom(ctx, qx, passes, mrow, srow)
	}
	q.pool.Put(ctx)
	return mean, std
}
