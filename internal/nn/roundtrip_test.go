package nn

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// TestSerializeCompileRoundTrip checks the full persistence pipeline:
// Save → Load → Compile/CompileBatch must reproduce the original
// network's Predictor outputs exactly, for shallow, deep multi-dropout,
// and dropout-free architectures. Run under -race in CI, so the
// concurrent sub-pass also exercises the pooled compiled contexts of a
// restored model.
func TestSerializeCompileRoundTrip(t *testing.T) {
	rng := xrand.New(51)
	cases := []struct {
		name  string
		dropP float64
		dims  []int
	}{
		{"shallow-single-dropout", 0.1, []int{6, 30, 3}},
		{"deep-multi-dropout", 0.25, []int{5, 24, 16, 8, 2}},
		{"no-dropout", 0, []int{4, 12, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := NewMLP(rng.Split(), Tanh, tc.dropP, tc.dims...)
			// Train a little so the weights are not at init.
			x := tensor.NewMatrix(32, tc.dims[0])
			y := tensor.NewMatrix(32, tc.dims[len(tc.dims)-1])
			r2 := rng.Split()
			for i := range x.Data {
				x.Data[i] = r2.Range(-1, 1)
			}
			for i := range y.Data {
				y.Data[i] = r2.Range(-1, 1)
			}
			if _, err := net.Fit(x, y, TrainConfig{Epochs: 10, BatchSize: 8, Seed: 9}); err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := net.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(&buf, rng.Split())
			if err != nil {
				t.Fatal(err)
			}
			c := loaded.Compile()
			cb := loaded.CompileBatch(3) // narrow width: forces chunked serving
			if c == nil || cb == nil {
				t.Fatal("compiled program is nil after round-trip")
			}

			probe := tensor.NewMatrix(10, tc.dims[0])
			for i := range probe.Data {
				probe.Data[i] = r2.Range(-2, 2)
			}
			batch := cb.PredictBatch(probe, nil)
			for i := 0; i < probe.Rows; i++ {
				want := net.Predict(probe.Row(i))
				single := c.Predict(probe.Row(i), nil)
				for j := range want {
					if math.Abs(single[j]-want[j]) > 1e-12 {
						t.Fatalf("row %d out %d: restored compiled %g vs original %g", i, j, single[j], want[j])
					}
					if math.Abs(batch.At(i, j)-want[j]) > 1e-12 {
						t.Fatalf("row %d out %d: restored compiled batch %g vs original %g", i, j, batch.At(i, j), want[j])
					}
				}
			}

			// Concurrent serving of the restored programs (meaningful under
			// -race): pooled single and batch contexts must not interfere.
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					out := tensor.NewMatrix(10, cb.out)
					mean := tensor.NewMatrix(10, cb.out)
					std := tensor.NewMatrix(10, cb.out)
					for k := 0; k < 50; k++ {
						cb.PredictBatch(probe, out)
						if !tensor.Equal(out, batch, 0) {
							panic("concurrent restored PredictBatch diverged")
						}
						cb.PredictMCBatch(probe, 4, mean, std)
					}
				}()
			}
			wg.Wait()
		})
	}
}
