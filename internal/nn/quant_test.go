package nn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// trainQuantNet builds a lightly trained MLP plus a calibration slice
// drawn from the same input distribution.
func trainQuantNet(t *testing.T, seed uint64, act Activation, dropP float64, dims ...int) (*Network, *tensor.Matrix) {
	t.Helper()
	rng := xrand.New(seed)
	net := NewMLP(rng.Split(), act, dropP, dims...)
	x := tensor.NewMatrix(48, dims[0])
	y := tensor.NewMatrix(48, dims[len(dims)-1])
	r2 := rng.Split()
	for i := range x.Data {
		x.Data[i] = r2.Range(-1.5, 1.5)
	}
	for i := range y.Data {
		y.Data[i] = r2.Range(-1, 1)
	}
	if _, err := net.Fit(x, y, TrainConfig{Epochs: 15, BatchSize: 8, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	calib := tensor.NewMatrix(24, dims[0])
	for i := range calib.Data {
		calib.Data[i] = r2.Range(-1.5, 1.5)
	}
	return net, calib
}

// The headline property: for random trained nets and random in-envelope
// inputs, the quantized output stays within the compile-time-reported
// error bound of the float program. Inputs the program reports as
// clipped are exempt (that is exactly what the ok flag is for).
func TestQuantErrorBoundProperty(t *testing.T) {
	cases := []struct {
		seed  uint64
		act   Activation
		dropP float64
		dims  []int
	}{
		{101, Tanh, 0.1, []int{6, 30, 48, 3}},
		{102, Tanh, 0, []int{4, 16, 2}},
		{103, Sigmoid, 0.2, []int{5, 24, 16, 2}},
		{104, Tanh, 0.25, []int{2, 24, 1}},
		{105, Sigmoid, 0, []int{3, 8, 8, 8, 1}},
	}
	for _, tc := range cases {
		net, calib := trainQuantNet(t, tc.seed, tc.act, tc.dropP, tc.dims...)
		c := net.Compile()
		q := c.Quantize(calib)
		if q == nil {
			t.Fatalf("seed %d: Quantize returned nil for a bounded-activation net", tc.seed)
		}
		bound := q.ErrorBound()
		if bound <= 0 || math.IsInf(bound, 0) || math.IsNaN(bound) {
			t.Fatalf("seed %d: bad error bound %g", tc.seed, bound)
		}
		if q.CalibratedError() > bound {
			t.Fatalf("seed %d: calibrated error %g exceeds guaranteed bound %g",
				tc.seed, q.CalibratedError(), bound)
		}
		if q.GateBound() > bound {
			t.Fatalf("seed %d: gate band %g exceeds guaranteed bound %g", tc.seed, q.GateBound(), bound)
		}
		probe := xrand.New(tc.seed * 7)
		x := make([]float64, tc.dims[0])
		qout := make([]float64, q.out)
		fout := make([]float64, q.out)
		served := 0
		for trial := 0; trial < 200; trial++ {
			for i := range x {
				x[i] = probe.Range(-2, 2)
			}
			_, ok := q.Predict(x, qout)
			if !ok {
				continue // outside the calibrated envelope: bound not promised
			}
			served++
			c.Predict(x, fout)
			for j := range qout {
				if d := math.Abs(qout[j] - fout[j]); d > bound {
					t.Fatalf("seed %d trial %d out %d: |quant-float| = %g exceeds bound %g",
						tc.seed, trial, j, d, bound)
				}
			}
		}
		if served == 0 {
			t.Fatalf("seed %d: every probe clipped; envelope is broken", tc.seed)
		}
	}
}

// Batch serving must agree exactly — bitwise — with N separate single
// Predict calls: the quantized batch path serves rows through the
// identical scalar program.
func TestQuantPredictBatchExact(t *testing.T) {
	net, calib := trainQuantNet(t, 110, Tanh, 0.1, 6, 30, 48, 3)
	q := net.Compile().Quantize(calib)
	if q == nil {
		t.Fatal("Quantize returned nil")
	}
	rng := xrand.New(111)
	xs := tensor.NewMatrix(17, 6)
	for i := range xs.Data {
		xs.Data[i] = rng.Range(-3, 3) // some rows clip on purpose
	}
	ok := make([]bool, xs.Rows)
	batch := q.PredictBatch(xs, nil, ok)
	single := make([]float64, q.out)
	for r := 0; r < xs.Rows; r++ {
		_, sok := q.Predict(xs.Row(r), single)
		if sok != ok[r] {
			t.Fatalf("row %d: batch ok=%v, single ok=%v", r, ok[r], sok)
		}
		for j := range single {
			if batch.At(r, j) != single[j] {
				t.Fatalf("row %d out %d: batch %v != single %v", r, j, batch.At(r, j), single[j])
			}
		}
	}
}

// The MC batch path is the same per-row program on one pooled context,
// so against a twin program (same seed base, fresh context) it must
// reproduce N consecutive single-row PredictMC calls exactly.
func TestQuantPredictMCBatchExact(t *testing.T) {
	// Twin programs share a seed base, so their pooled contexts draw
	// identical dropout streams — except under -race, where sync.Pool
	// drops items and the context counters diverge.
	skipAllocCheckUnderRace(t)
	net, calib := trainQuantNet(t, 115, Tanh, 0.15, 5, 20, 12, 2)
	c := net.Compile()
	qa := c.Quantize(calib)
	qb := c.Quantize(calib)
	if qa == nil || qb == nil {
		t.Fatal("Quantize returned nil")
	}
	rng := xrand.New(116)
	xs := tensor.NewMatrix(9, 5)
	for i := range xs.Data {
		xs.Data[i] = rng.Range(-1.5, 1.5)
	}
	const passes = 7
	ok := make([]bool, xs.Rows)
	mean, std := qa.PredictMCBatch(xs, passes, nil, nil, ok)
	smean := make([]float64, 2)
	sstd := make([]float64, 2)
	for r := 0; r < xs.Rows; r++ {
		_, _, sok := qb.PredictMC(xs.Row(r), passes, smean, sstd)
		if sok != ok[r] {
			t.Fatalf("row %d: ok mismatch", r)
		}
		for j := 0; j < 2; j++ {
			if mean.At(r, j) != smean[j] || std.At(r, j) != sstd[j] {
				t.Fatalf("row %d out %d: batch (%v,%v) != single (%v,%v)",
					r, j, mean.At(r, j), std.At(r, j), smean[j], sstd[j])
			}
		}
	}
}

// A dropout-free program must collapse MC to the deterministic pass
// with exactly zero std; a dropout program's MC mean stays near the
// float program's MC mean (quantization bound + Monte Carlo noise).
func TestQuantPredictMC(t *testing.T) {
	net, calib := trainQuantNet(t, 120, Tanh, 0, 4, 16, 2)
	q := net.Compile().Quantize(calib)
	x := []float64{0.3, -0.2, 0.8, -0.5}
	mean, std, ok := q.PredictMC(x, 5, nil, nil)
	if !ok {
		t.Fatal("in-envelope input reported clipped")
	}
	det, _ := q.Predict(x, nil)
	for j := range mean {
		if mean[j] != det[j] || std[j] != 0 {
			t.Fatalf("no-dropout MC: out %d mean %v det %v std %v", j, mean[j], det[j], std[j])
		}
	}

	netD, calibD := trainQuantNet(t, 121, Tanh, 0.2, 6, 30, 48, 3)
	cD := netD.Compile()
	qD := cD.Quantize(calibD)
	const passes = 400
	qm, qs, ok := qD.PredictMC([]float64{0.2, -0.4, 0.6, -0.1, 0.9, -0.7}, passes, nil, nil)
	if !ok {
		t.Fatal("in-envelope input reported clipped")
	}
	fm, fs := cD.PredictMC([]float64{0.2, -0.4, 0.6, -0.1, 0.9, -0.7}, passes, nil, nil)
	for j := range qm {
		tol := qD.ErrorBound() + 6*(fs[j]+qs[j])/math.Sqrt(passes) + 1e-3
		if d := math.Abs(qm[j] - fm[j]); d > tol {
			t.Fatalf("out %d: quant MC mean %g vs float %g (|d|=%g > tol %g)", j, qm[j], fm[j], d, tol)
		}
		if qs[j] < 0 || math.IsNaN(qs[j]) {
			t.Fatalf("out %d: bad quant MC std %g", j, qs[j])
		}
	}
}

// Inputs outside the calibrated envelope must be flagged on every entry
// point — that flag is what routes the query back to the float program.
func TestQuantClipFlag(t *testing.T) {
	net, calib := trainQuantNet(t, 130, Tanh, 0.1, 4, 12, 2)
	q := net.Compile().Quantize(calib)
	far := []float64{50, 0, 0, 0}
	if _, ok := q.Predict(far, nil); ok {
		t.Fatal("Predict: far-out input not flagged")
	}
	if _, _, ok := q.PredictMC(far, 4, nil, nil); ok {
		t.Fatal("PredictMC: far-out input not flagged")
	}
	xs := tensor.FromRows([][]float64{{0.1, 0.2, 0.1, 0}, {50, 0, 0, 0}})
	oks := make([]bool, 2)
	q.PredictBatch(xs, nil, oks)
	if !oks[0] || oks[1] {
		t.Fatalf("PredictBatch ok = %v, want [true false]", oks)
	}
}

// Unsupported shapes degrade to nil (caller keeps the float program):
// ReLU hidden layers have no bounded requant grid.
func TestQuantizeUnsupported(t *testing.T) {
	rng := xrand.New(140)
	relu := NewMLP(rng.Split(), ReLU, 0.1, 4, 12, 2)
	if q := relu.Compile().Quantize(nil); q != nil {
		t.Fatal("ReLU hidden net should not quantize")
	}
}

// Serialize round-trip: deserialize → Compile → Quantize must reproduce
// bit-identical int8 panels and scales — the groundwork for shipping
// quantized programs through the artifact registry.
func TestQuantSerializeRoundTrip(t *testing.T) {
	net, calib := trainQuantNet(t, 150, Tanh, 0.1, 6, 30, 48, 3)
	q1 := net.Compile().Quantize(calib)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, xrand.New(151))
	if err != nil {
		t.Fatal(err)
	}
	q2 := loaded.Compile().Quantize(calib)
	if q2 == nil {
		t.Fatal("restored net did not quantize")
	}
	if q1.inScale != q2.inScale || q1.invIn != q2.invIn {
		t.Fatalf("input scale drifted: %g vs %g", q1.inScale, q2.inScale)
	}
	if q1.boundMax != q2.boundMax || q1.calErr != q2.calErr || q1.gate != q2.gate {
		t.Fatalf("error figures drifted: (%g,%g,%g) vs (%g,%g,%g)",
			q1.boundMax, q1.calErr, q1.gate, q2.boundMax, q2.calErr, q2.gate)
	}
	if len(q1.steps) != len(q2.steps) {
		t.Fatalf("step count %d vs %d", len(q1.steps), len(q2.steps))
	}
	for si := range q1.steps {
		a, b := &q1.steps[si], &q2.steps[si]
		if a.kind != b.kind {
			t.Fatalf("step %d kind mismatch", si)
		}
		if a.kind != stepDense {
			continue
		}
		if len(a.panel.Words) != len(b.panel.Words) {
			t.Fatalf("step %d: packed panel size %d vs %d", si, len(a.panel.Words), len(b.panel.Words))
		}
		for i := range a.panel.Words {
			if a.panel.Words[i] != b.panel.Words[i] {
				t.Fatalf("step %d word %d: packed panels differ", si, i)
			}
		}
		for j := range a.panel.ColCorr {
			if a.panel.ColCorr[j] != b.panel.ColCorr[j] {
				t.Fatalf("step %d col %d: corrections differ", si, j)
			}
		}
		for j := range a.wscale {
			if a.wscale[j] != b.wscale[j] {
				t.Fatalf("step %d col %d: scale %g vs %g", si, j, a.wscale[j], b.wscale[j])
			}
		}
	}
	// And the restored program serves identical outputs.
	x := []float64{0.3, -0.2, 0.8, -0.5, 0.1, 0.6}
	o1, _ := q1.Predict(x, nil)
	o2, _ := q2.Predict(x, nil)
	for j := range o1 {
		if o1[j] != o2[j] {
			t.Fatalf("out %d: %v vs %v after round-trip", j, o1[j], o2[j])
		}
	}
}

// Warmed quantized entry points must allocate nothing — the same
// contract as the float compiled program.
func TestQuantZeroAlloc(t *testing.T) {
	skipAllocCheckUnderRace(t)
	net, calib := trainQuantNet(t, 160, Tanh, 0.1, 6, 30, 48, 3)
	q := net.Compile().Quantize(calib)
	x := []float64{0.3, -0.2, 0.8, -0.5, 0.1, 0.6}
	dst := make([]float64, 3)
	mean := make([]float64, 3)
	std := make([]float64, 3)
	q.Predict(x, dst) // warm the pool
	if n := testing.AllocsPerRun(200, func() { q.Predict(x, dst) }); n != 0 {
		t.Fatalf("Predict allocates %v/op", n)
	}
	q.PredictMC(x, 8, mean, std)
	if n := testing.AllocsPerRun(100, func() { q.PredictMC(x, 8, mean, std) }); n != 0 {
		t.Fatalf("PredictMC allocates %v/op", n)
	}
	xs := tensor.NewMatrix(16, 6)
	for i := range xs.Data {
		xs.Data[i] = 0.1
	}
	bdst := tensor.NewMatrix(16, 3)
	oks := make([]bool, 16)
	q.PredictBatch(xs, bdst, oks)
	if n := testing.AllocsPerRun(100, func() { q.PredictBatch(xs, bdst, oks) }); n != 0 {
		t.Fatalf("PredictBatch allocates %v/op", n)
	}
	bm := tensor.NewMatrix(16, 3)
	bs := tensor.NewMatrix(16, 3)
	q.PredictMCBatch(xs, 8, bm, bs, oks)
	if n := testing.AllocsPerRun(50, func() { q.PredictMCBatch(xs, 8, bm, bs, oks) }); n != 0 {
		t.Fatalf("PredictMCBatch allocates %v/op", n)
	}
}
