package tissue

import (
	"fmt"

	"repro/internal/xrand"
)

// Cell is one biological-cell agent on the grid (§II-B: "VT simulations
// are agent-based, with the core agent often representing biological
// cells").
type Cell struct {
	I, J   int
	Energy float64
	Alive  bool
}

// CellParams govern agent behaviour.
type CellParams struct {
	// UptakeRate is how much field concentration a cell consumes per agent
	// step (converted to energy).
	UptakeRate float64
	// Metabolism is the per-step energy cost of staying alive.
	Metabolism float64
	// DivideEnergy triggers division above this energy.
	DivideEnergy float64
	// StarveEnergy kills the cell below this energy.
	StarveEnergy float64
	// SecretionRate is how much chemical each cell adds to the source term
	// (models signaling; may be 0).
	SecretionRate float64
}

// DefaultCellParams returns a viable parameterization.
func DefaultCellParams() CellParams {
	return CellParams{
		UptakeRate: 0.5, Metabolism: 0.05, DivideEnergy: 2.0,
		StarveEnergy: 0.0, SecretionRate: 0,
	}
}

// Tissue couples the cell agents with the chemical field through a
// pluggable transport stepper — the seam where the ML short-circuit
// replaces the explicit solver.
type Tissue struct {
	Field  *Field
	Cells  []Cell
	CP     CellParams
	Solver *Solver
	// MicroStepsPerAgentStep is K: how many transport micro-steps elapse
	// per agent update.
	MicroStepsPerAgentStep int
	// Stepper advances the field K micro-steps; defaults to the explicit
	// solver. Swapping in a learned MacroStepper is the E9 experiment.
	Stepper MacroStepper
	rng     *xrand.Rand
}

// MacroStepper advances a field by K micro-steps of the PDE.
type MacroStepper interface {
	Advance(f *Field, k int)
	Name() string
}

// ExplicitStepper is the reference stepper: K explicit solver steps.
type ExplicitStepper struct{ S *Solver }

// Name implements MacroStepper.
func (e ExplicitStepper) Name() string { return "explicit" }

// Advance implements MacroStepper.
func (e ExplicitStepper) Advance(f *Field, k int) { e.S.Steps(f, k) }

// NewTissue builds a tissue with nCells agents at random positions.
func NewTissue(f *Field, sol *Solver, cp CellParams, nCells, microSteps int, seed uint64) (*Tissue, error) {
	if nCells < 0 || nCells > f.NX*f.NY {
		return nil, fmt.Errorf("tissue: %d cells will not fit a %dx%d grid", nCells, f.NX, f.NY)
	}
	if microSteps < 1 {
		return nil, fmt.Errorf("tissue: micro steps %d < 1", microSteps)
	}
	rng := xrand.New(seed)
	t := &Tissue{
		Field: f, CP: cp, Solver: sol,
		MicroStepsPerAgentStep: microSteps,
		Stepper:                ExplicitStepper{S: sol},
		rng:                    rng,
	}
	occupied := map[int]bool{}
	for len(t.Cells) < nCells {
		i, j := rng.Intn(f.NX), rng.Intn(f.NY)
		key := j*f.NX + i
		if occupied[key] {
			continue
		}
		occupied[key] = true
		t.Cells = append(t.Cells, Cell{I: i, J: j, Energy: 1, Alive: true})
	}
	return t, nil
}

// AliveCount returns the number of living cells.
func (t *Tissue) AliveCount() int {
	n := 0
	for _, c := range t.Cells {
		if c.Alive {
			n++
		}
	}
	return n
}

// Step advances one agent step: transport (K micro-steps via the active
// stepper), then uptake/metabolism/division/death.
func (t *Tissue) Step() {
	// Update the source term from secreting cells.
	if t.CP.SecretionRate > 0 {
		if t.Solver.Source == nil {
			t.Solver.Source = make([]float64, len(t.Field.U))
		}
		for i := range t.Solver.Source {
			t.Solver.Source[i] = 0
		}
		for _, c := range t.Cells {
			if c.Alive {
				t.Solver.Source[t.Field.idx(c.I, c.J)] += t.CP.SecretionRate
			}
		}
	}
	t.Stepper.Advance(t.Field, t.MicroStepsPerAgentStep)

	occupied := map[int]bool{}
	for _, c := range t.Cells {
		if c.Alive {
			occupied[t.Field.idx(c.I, c.J)] = true
		}
	}
	var born []Cell
	for ci := range t.Cells {
		c := &t.Cells[ci]
		if !c.Alive {
			continue
		}
		// Uptake: consume local concentration.
		avail := t.Field.At(c.I, c.J)
		take := t.CP.UptakeRate
		if take > avail {
			take = avail
		}
		t.Field.Set(c.I, c.J, avail-take)
		c.Energy += take - t.CP.Metabolism
		if c.Energy <= t.CP.StarveEnergy {
			c.Alive = false
			occupied[t.Field.idx(c.I, c.J)] = false
			continue
		}
		if c.Energy >= t.CP.DivideEnergy {
			// Divide into a random free von Neumann neighbor.
			dirs := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
			t.rng.Shuffle(len(dirs), func(i, j int) { dirs[i], dirs[j] = dirs[j], dirs[i] })
			for _, d := range dirs {
				ni := ((c.I+d[0])%t.Field.NX + t.Field.NX) % t.Field.NX
				nj := ((c.J+d[1])%t.Field.NY + t.Field.NY) % t.Field.NY
				key := t.Field.idx(ni, nj)
				if !occupied[key] {
					c.Energy /= 2
					born = append(born, Cell{I: ni, J: nj, Energy: c.Energy, Alive: true})
					occupied[key] = true
					break
				}
			}
		}
	}
	t.Cells = append(t.Cells, born...)
}

// Steps advances n agent steps.
func (t *Tissue) Steps(n int) {
	for i := 0; i < n; i++ {
		t.Step()
	}
}
