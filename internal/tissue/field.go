// Package tissue implements the virtual-tissue exemplar of §II-B: an
// agent-based cell population coupled to an explicit reaction–advection–
// diffusion solver, plus the ML short-circuit of the transport inner loop
// — "the elimination of short time scales, e.g., short-circuit the
// calculations of advection-diffusion" — reproduced as experiment E9. The
// learned macro-stepper advances the chemical field K micro-steps at a
// time on a 2× coarse grid, trading bounded field error for a large
// reduction in stencil work, exactly the "larger grain size to solve the
// diffusion equation" the paper's introduction proposes.
package tissue

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Field is a 2D scalar concentration field on a periodic uniform grid.
type Field struct {
	NX, NY int
	H      float64 // grid spacing
	U      []float64
}

// NewField allocates a zero field.
func NewField(nx, ny int, h float64) *Field {
	if nx < 4 || ny < 4 || h <= 0 {
		panic(fmt.Sprintf("tissue: invalid field %dx%d h=%g", nx, ny, h))
	}
	return &Field{NX: nx, NY: ny, H: h, U: make([]float64, nx*ny)}
}

// At returns u(i,j) with periodic wrapping.
func (f *Field) At(i, j int) float64 {
	return f.U[f.idx(i, j)]
}

// Set assigns u(i,j) with periodic wrapping.
func (f *Field) Set(i, j int, v float64) {
	f.U[f.idx(i, j)] = v
}

func (f *Field) idx(i, j int) int {
	i = ((i % f.NX) + f.NX) % f.NX
	j = ((j % f.NY) + f.NY) % f.NY
	return j*f.NX + i
}

// Clone deep-copies the field.
func (f *Field) Clone() *Field {
	c := NewField(f.NX, f.NY, f.H)
	copy(c.U, f.U)
	return c
}

// Total returns the integral of u over the domain (sum * cell area).
func (f *Field) Total() float64 {
	s := 0.0
	for _, v := range f.U {
		s += v
	}
	return s * f.H * f.H
}

// L2Diff returns the root-mean-square difference between two fields of
// identical shape.
func L2Diff(a, b *Field) float64 {
	if a.NX != b.NX || a.NY != b.NY {
		panic("tissue: L2Diff shape mismatch")
	}
	s := 0.0
	for i := range a.U {
		d := a.U[i] - b.U[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a.U)))
}

// PDEParams are the coefficients of du/dt = D∇²u − v·∇u − k·u + S.
type PDEParams struct {
	Diff   float64 // diffusion coefficient D
	VX, VY float64 // advection velocity
	Decay  float64 // linear decay k
	Dt     float64 // micro timestep
}

// StabilityOK reports whether the explicit FTCS + upwind scheme is stable
// on the given grid (diffusive CFL with an advective safety margin).
func (p PDEParams) StabilityOK(h float64) bool {
	if p.Dt <= 0 {
		return false
	}
	diffLimit := h * h / (4 * math.Max(p.Diff, 1e-12))
	advSpeed := math.Abs(p.VX) + math.Abs(p.VY)
	advLimit := math.Inf(1)
	if advSpeed > 0 {
		advLimit = h / advSpeed
	}
	return p.Dt <= 0.9*diffLimit && p.Dt <= 0.9*advLimit
}

// Solver advances a Field explicitly. Source is an optional per-node
// source term (same length as U), typically written by the cell agents.
type Solver struct {
	P       PDEParams
	Source  []float64
	Workers int
	scratch []float64
}

// NewSolver builds a solver; it panics if the scheme would be unstable,
// the failure-injection guard for misuse of the explicit stepper.
func NewSolver(p PDEParams, f *Field) *Solver {
	if !p.StabilityOK(f.H) {
		panic(fmt.Sprintf("tissue: unstable parameters %+v for h=%g", p, f.H))
	}
	return &Solver{P: p, scratch: make([]float64, len(f.U))}
}

// Step advances the field one micro-step with a 5-point FTCS Laplacian
// and first-order upwind advection, parallelized over row stripes.
func (s *Solver) Step(f *Field) {
	if len(s.scratch) != len(f.U) {
		s.scratch = make([]float64, len(f.U))
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > f.NY {
		workers = f.NY
	}
	stripe := (f.NY + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		jLo, jHi := w*stripe, (w+1)*stripe
		if jHi > f.NY {
			jHi = f.NY
		}
		if jLo >= jHi {
			break
		}
		wg.Add(1)
		go func(jLo, jHi int) {
			defer wg.Done()
			s.stepRows(f, jLo, jHi)
		}(jLo, jHi)
	}
	wg.Wait()
	copy(f.U, s.scratch)
}

func (s *Solver) stepRows(f *Field, jLo, jHi int) {
	p := s.P
	h := f.H
	nx, ny := f.NX, f.NY
	for j := jLo; j < jHi; j++ {
		jm := ((j - 1) + ny) % ny * nx
		jp := (j + 1) % ny * nx
		j0 := j * nx
		for i := 0; i < nx; i++ {
			im := ((i - 1) + nx) % nx
			ip := (i + 1) % nx
			u := f.U[j0+i]
			lap := (f.U[j0+im] + f.U[j0+ip] + f.U[jm+i] + f.U[jp+i] - 4*u) / (h * h)
			// Upwind advection.
			var dudx, dudy float64
			if p.VX >= 0 {
				dudx = (u - f.U[j0+im]) / h
			} else {
				dudx = (f.U[j0+ip] - u) / h
			}
			if p.VY >= 0 {
				dudy = (u - f.U[jm+i]) / h
			} else {
				dudy = (f.U[jp+i] - u) / h
			}
			src := 0.0
			if s.Source != nil {
				src = s.Source[j0+i]
			}
			s.scratch[j0+i] = u + p.Dt*(p.Diff*lap-p.VX*dudx-p.VY*dudy-p.Decay*u+src)
		}
	}
}

// Steps advances n micro-steps.
func (s *Solver) Steps(f *Field, n int) {
	for i := 0; i < n; i++ {
		s.Step(f)
	}
}

// Restrict returns the 2× coarsened field (2x2 block average); both
// dimensions must be even. This is the "larger grain size" operator.
func Restrict(f *Field) *Field {
	if f.NX%2 != 0 || f.NY%2 != 0 {
		panic("tissue: Restrict requires even dimensions")
	}
	c := NewField(f.NX/2, f.NY/2, f.H*2)
	for j := 0; j < c.NY; j++ {
		for i := 0; i < c.NX; i++ {
			sum := f.At(2*i, 2*j) + f.At(2*i+1, 2*j) + f.At(2*i, 2*j+1) + f.At(2*i+1, 2*j+1)
			c.Set(i, j, sum/4)
		}
	}
	return c
}

// Prolong returns the 2× refined field (piecewise-constant injection).
func Prolong(c *Field) *Field {
	f := NewField(c.NX*2, c.NY*2, c.H/2)
	for j := 0; j < c.NY; j++ {
		for i := 0; i < c.NX; i++ {
			v := c.At(i, j)
			f.Set(2*i, 2*j, v)
			f.Set(2*i+1, 2*j, v)
			f.Set(2*i, 2*j+1, v)
			f.Set(2*i+1, 2*j+1, v)
		}
	}
	return f
}

// GaussianBump initializes the field with a Gaussian blob, the standard
// test initial condition.
func (f *Field) GaussianBump(cx, cy, sigma, amplitude float64) {
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			dx := (float64(i) - cx) * f.H
			dy := (float64(j) - cy) * f.H
			f.Set(i, j, amplitude*math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma)))
		}
	}
}
