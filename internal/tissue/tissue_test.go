package tissue

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func stableParams() PDEParams {
	return PDEParams{Diff: 0.5, VX: 0.1, VY: 0, Decay: 0, Dt: 0.1}
}

func TestFieldIndexingPeriodic(t *testing.T) {
	f := NewField(8, 8, 1)
	f.Set(0, 0, 5)
	if f.At(8, 8) != 5 || f.At(-8, -8) != 5 {
		t.Fatal("periodic wrapping broken")
	}
	f.Set(-1, 2, 7)
	if f.At(7, 2) != 7 {
		t.Fatal("negative index wrapping broken")
	}
}

func TestNewFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny field did not panic")
		}
	}()
	NewField(2, 8, 1)
}

func TestStabilityCheck(t *testing.T) {
	p := stableParams()
	if !p.StabilityOK(1) {
		t.Fatal("stable parameters rejected")
	}
	p.Dt = 10
	if p.StabilityOK(1) {
		t.Fatal("unstable dt accepted")
	}
	p = stableParams()
	p.VX = 100
	if p.StabilityOK(1) {
		t.Fatal("unstable advection accepted")
	}
	if (PDEParams{Diff: 1, Dt: 0}).StabilityOK(1) {
		t.Fatal("zero dt accepted")
	}
}

func TestNewSolverPanicsOnUnstable(t *testing.T) {
	f := NewField(8, 8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unstable solver construction did not panic")
		}
	}()
	NewSolver(PDEParams{Diff: 10, Dt: 1}, f)
}

func TestDiffusionConservesMass(t *testing.T) {
	// Pure diffusion on a periodic grid conserves the integral of u.
	f := NewField(32, 32, 1)
	f.GaussianBump(16, 16, 3, 1)
	before := f.Total()
	s := NewSolver(PDEParams{Diff: 0.5, Dt: 0.2}, f)
	s.Steps(f, 100)
	after := f.Total()
	if math.Abs(after-before) > 1e-8*math.Abs(before) {
		t.Fatalf("mass not conserved: %g -> %g", before, after)
	}
}

func TestDiffusionSpreadsPeak(t *testing.T) {
	f := NewField(32, 32, 1)
	f.GaussianBump(16, 16, 2, 1)
	peak0 := f.At(16, 16)
	s := NewSolver(PDEParams{Diff: 0.5, Dt: 0.2}, f)
	s.Steps(f, 50)
	if f.At(16, 16) >= peak0 {
		t.Fatal("diffusion did not lower the peak")
	}
	for _, v := range f.U {
		if v < -1e-9 {
			t.Fatal("diffusion produced negative concentration")
		}
	}
}

func TestDecayReducesMass(t *testing.T) {
	f := NewField(16, 16, 1)
	f.GaussianBump(8, 8, 3, 1)
	before := f.Total()
	s := NewSolver(PDEParams{Diff: 0.1, Decay: 0.1, Dt: 0.2}, f)
	s.Steps(f, 20)
	if f.Total() >= before {
		t.Fatal("decay did not reduce mass")
	}
}

func TestAdvectionMovesCenterOfMass(t *testing.T) {
	f := NewField(64, 16, 1)
	f.GaussianBump(16, 8, 2, 1)
	com := func(f *Field) float64 {
		num, den := 0.0, 0.0
		for i := 0; i < f.NX; i++ {
			for j := 0; j < f.NY; j++ {
				num += float64(i) * f.At(i, j)
				den += f.At(i, j)
			}
		}
		return num / den
	}
	before := com(f)
	s := NewSolver(PDEParams{Diff: 0.05, VX: 0.5, Dt: 0.2}, f)
	s.Steps(f, 60)
	after := com(f)
	if after <= before+2 {
		t.Fatalf("advection moved center of mass only %g -> %g", before, after)
	}
}

func TestSolverParallelMatchesSerial(t *testing.T) {
	mk := func(workers int) *Field {
		f := NewField(32, 32, 1)
		f.GaussianBump(10, 20, 3, 1)
		s := NewSolver(stableParams(), f)
		s.Workers = workers
		s.Steps(f, 30)
		return f
	}
	a, b := mk(1), mk(4)
	if d := L2Diff(a, b); d > 1e-12 {
		t.Fatalf("parallel solver differs from serial by %g", d)
	}
}

func TestSourceTermAddsMass(t *testing.T) {
	f := NewField(16, 16, 1)
	s := NewSolver(PDEParams{Diff: 0.1, Dt: 0.2}, f)
	s.Source = make([]float64, len(f.U))
	s.Source[f.idx(8, 8)] = 1
	s.Steps(f, 10)
	if f.Total() <= 0 {
		t.Fatal("source did not add mass")
	}
}

func TestRestrictProlongRoundTrip(t *testing.T) {
	f := NewField(16, 16, 1)
	f.GaussianBump(8, 8, 3, 1)
	c := Restrict(f)
	if c.NX != 8 || c.NY != 8 || c.H != 2 {
		t.Fatalf("coarse field %dx%d h=%g", c.NX, c.NY, c.H)
	}
	// Restriction preserves total mass (block average * 4 cells * (h/2)^2).
	if math.Abs(c.Total()-f.Total()) > 1e-9 {
		t.Fatalf("restriction changed mass %g -> %g", f.Total(), c.Total())
	}
	p := Prolong(c)
	if p.NX != 16 || math.Abs(p.Total()-c.Total()) > 1e-9 {
		t.Fatal("prolongation inconsistent")
	}
	// Prolong(Restrict(constant)) is identity for constant fields.
	k := NewField(8, 8, 1)
	k.U[0] = 0
	for i := range k.U {
		k.U[i] = 3.5
	}
	rt := Prolong(Restrict(k))
	for i := range rt.U {
		if math.Abs(rt.U[i]-3.5) > 1e-12 {
			t.Fatal("constant field not preserved by restrict/prolong")
		}
	}
}

func TestRestrictOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd restrict did not panic")
		}
	}()
	Restrict(NewField(9, 8, 1))
}

func TestTissueCellsLiveAndDivide(t *testing.T) {
	f := NewField(24, 24, 1)
	for i := range f.U {
		f.U[i] = 2 // plentiful nutrient
	}
	s := NewSolver(PDEParams{Diff: 0.2, Dt: 0.2}, f)
	tis, err := NewTissue(f, s, DefaultCellParams(), 10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tis.AliveCount() != 10 {
		t.Fatalf("initial alive %d", tis.AliveCount())
	}
	tis.Steps(10)
	if tis.AliveCount() <= 10 {
		t.Fatalf("cells did not divide in nutrient-rich medium: %d", tis.AliveCount())
	}
}

func TestTissueCellsStarve(t *testing.T) {
	f := NewField(16, 16, 1) // zero nutrient
	s := NewSolver(PDEParams{Diff: 0.2, Dt: 0.2}, f)
	cp := DefaultCellParams()
	cp.Metabolism = 0.5
	tis, err := NewTissue(f, s, cp, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tis.Steps(10)
	if tis.AliveCount() != 0 {
		t.Fatalf("cells survived starvation: %d alive", tis.AliveCount())
	}
}

func TestTissueSecretionFeedsField(t *testing.T) {
	f := NewField(16, 16, 1)
	s := NewSolver(PDEParams{Diff: 0.2, Dt: 0.2}, f)
	cp := DefaultCellParams()
	cp.SecretionRate = 1
	cp.UptakeRate = 0
	cp.Metabolism = 0
	tis, err := NewTissue(f, s, cp, 5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tis.Steps(5)
	if f.Total() <= 0 {
		t.Fatal("secretion did not add chemical")
	}
}

func TestNewTissueValidation(t *testing.T) {
	f := NewField(8, 8, 1)
	s := NewSolver(stableParams(), f)
	if _, err := NewTissue(f, s, DefaultCellParams(), 1000, 2, 1); err == nil {
		t.Fatal("overfull tissue accepted")
	}
	if _, err := NewTissue(f, s, DefaultCellParams(), 4, 0, 1); err == nil {
		t.Fatal("zero micro-steps accepted")
	}
}

func TestLearnedStencilApproximatesFineSolver(t *testing.T) {
	fine := NewField(32, 32, 1)
	params := PDEParams{Diff: 0.4, VX: 0, VY: 0, Decay: 0.01, Dt: 0.2}
	fineSolver := NewSolver(params, fine)
	ls := NewLearnedStencil(8, 1, 0, xrand.New(5))
	tc := DefaultTrainConfig()
	tc.Fields = 10
	tc.Epochs = 150
	if err := ls.Train(fine, fineSolver, tc); err != nil {
		t.Fatal(err)
	}
	// Fresh test field.
	test := NewField(32, 32, 1)
	test.GaussianBump(20, 12, 3, 1.2)
	res, err := CompareShortCircuit(test, NewSolver(params, test), ls, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The coarse learned propagator should track the restricted fine
	// solution to within a few percent of the field scale (~1).
	if res.L2Error > 0.08 {
		t.Fatalf("short-circuit L2 error %g too large", res.L2Error)
	}
	if res.ExplicitSteps != 24 || res.SurrogateJumps != 3 {
		t.Fatalf("bookkeeping wrong: %+v", res)
	}
}

// TestLearnedStencilSnapshot checks snapshots advance fields identically
// to the original and stay independent: concurrent snapshot sweeps (which
// would race on the original's shared workspaces) produce exactly the
// sequential result. Run with -race.
func TestLearnedStencilSnapshot(t *testing.T) {
	fine := NewField(24, 24, 1)
	params := PDEParams{Diff: 0.4, VX: 0, VY: 0, Decay: 0.01, Dt: 0.2}
	ls := NewLearnedStencil(4, 1, 0, xrand.New(7))
	tc := DefaultTrainConfig()
	tc.Fields = 6
	tc.Epochs = 60
	if err := ls.Train(fine, NewSolver(params, fine), tc); err != nil {
		t.Fatal(err)
	}
	mk := func() *Field {
		f := NewField(12, 12, 1)
		f.GaussianBump(6, 6, 2, 1)
		return f
	}
	want := mk()
	ls.Advance(want, ls.K)

	const workers = 4
	fields := make([]*Field, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		snap := ls.Snapshot()
		fields[i] = mk()
		go func(s *LearnedStencil, f *Field) {
			defer wg.Done()
			s.Advance(f, s.K)
		}(snap, fields[i])
	}
	wg.Wait()
	for i, f := range fields {
		if d := L2Diff(want, f); d != 0 {
			t.Fatalf("snapshot %d diverged from original by %g", i, d)
		}
	}
}

func TestLearnedStencilUntrainedErrors(t *testing.T) {
	ls := NewLearnedStencil(4, 1, 0, xrand.New(6))
	f := NewField(8, 8, 1)
	if _, err := CompareShortCircuit(f, NewSolver(stableParams(), f), ls, 1); err == nil {
		t.Fatal("untrained compare accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("untrained Advance did not panic")
		}
	}()
	ls.Advance(f, 4)
}

func TestLearnedStencilAdvanceMultipleCheck(t *testing.T) {
	fine := NewField(16, 16, 1)
	params := PDEParams{Diff: 0.3, Dt: 0.2}
	ls := NewLearnedStencil(4, 1, 0, xrand.New(7))
	tc := DefaultTrainConfig()
	tc.Fields = 3
	tc.SamplesPerField = 100
	tc.Epochs = 30
	if err := ls.Train(fine, NewSolver(params, fine), tc); err != nil {
		t.Fatal(err)
	}
	coarse := Restrict(fine)
	defer func() {
		if recover() == nil {
			t.Fatal("non-multiple advance did not panic")
		}
	}()
	ls.Advance(coarse, 6) // not a multiple of 4
}

func TestTissueWithLearnedStepper(t *testing.T) {
	// The tissue must run end-to-end with the surrogate stepper swapped in
	// (the actual short-circuit deployment).
	fine := NewField(16, 16, 1)
	params := PDEParams{Diff: 0.3, Dt: 0.2}
	ls := NewLearnedStencil(4, 1, 0, xrand.New(8))
	tc := DefaultTrainConfig()
	tc.Fields = 4
	tc.SamplesPerField = 150
	tc.Epochs = 50
	if err := ls.Train(fine, NewSolver(params, fine), tc); err != nil {
		t.Fatal(err)
	}
	coarse := NewField(8, 8, 2)
	for i := range coarse.U {
		coarse.U[i] = 1.5
	}
	sol := NewSolver(PDEParams{Diff: 0.3, Dt: 0.2}, coarse)
	tis, err := NewTissue(coarse, sol, DefaultCellParams(), 6, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	tis.Stepper = ls
	tis.Steps(3)
	for _, v := range coarse.U {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("invalid field value %g under surrogate stepper", v)
		}
	}
}

// Property: one explicit step is linear in the field for Decay-only
// dynamics: step(a*u) == a*step(u).
func TestSolverLinearityQuick(t *testing.T) {
	rng := xrand.New(10)
	if err := quick.Check(func(scaleRaw uint8) bool {
		scale := 0.5 + float64(scaleRaw)/64
		f1 := NewField(16, 16, 1)
		f1.GaussianBump(8, 8, 2, 1)
		f2 := f1.Clone()
		for i := range f2.U {
			f2.U[i] *= scale
		}
		p := PDEParams{Diff: 0.3, VX: 0.1, Decay: 0.05, Dt: 0.2}
		NewSolver(p, f1).Steps(f1, 5)
		NewSolver(p, f2).Steps(f2, 5)
		for i := range f1.U {
			if math.Abs(f2.U[i]-scale*f1.U[i]) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func BenchmarkExplicitStep32(b *testing.B) {
	f := NewField(32, 32, 1)
	f.GaussianBump(16, 16, 3, 1)
	s := NewSolver(stableParams(), f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(f)
	}
}

func BenchmarkExplicitStep128(b *testing.B) {
	f := NewField(128, 128, 1)
	f.GaussianBump(64, 64, 10, 1)
	s := NewSolver(stableParams(), f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(f)
	}
}
