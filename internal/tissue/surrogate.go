package tissue

import (
	"errors"
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// LearnedStencil is the ML short-circuit of the transport loop: a model
// that maps a 5x5 neighborhood of the 2× coarse field directly to the
// coarse value K micro-steps later, replacing K explicit fine-grid sweeps
// with a single learned sweep on a quarter of the nodes. For the linear
// PDE the learned propagator can be nearly exact; the NN variant (one
// hidden layer) also absorbs the mild nonlinearity of the decay+source
// coupling. This is experiment E9's surrogate.
type LearnedStencil struct {
	// K is the number of micro-steps the stencil jumps.
	K int
	// Patch is the neighborhood half-width (1 → 3x3, 2 → 5x5).
	Patch int
	// Hidden, when non-zero, inserts a hidden tanh layer of that width.
	Hidden int

	net     *nn.Network
	pred    *nn.Predictor  // reusable inference workspaces
	xBuf    *tensor.Matrix // reusable all-nodes feature batch
	scaler  *nn.Scaler
	trained bool
	rng     *xrand.Rand
}

// NewLearnedStencil constructs an untrained stencil surrogate.
func NewLearnedStencil(k, patch, hidden int, rng *xrand.Rand) *LearnedStencil {
	if k < 1 || patch < 1 {
		panic("tissue: invalid stencil configuration")
	}
	return &LearnedStencil{K: k, Patch: patch, Hidden: hidden, rng: rng}
}

// Name implements MacroStepper.
func (ls *LearnedStencil) Name() string { return fmt.Sprintf("learned-stencil(K=%d)", ls.K) }

func (ls *LearnedStencil) featDim() int {
	w := 2*ls.Patch + 1
	return w * w
}

// patchFeatures extracts the flattened neighborhood of (i,j).
func (ls *LearnedStencil) patchFeatures(f *Field, i, j int, out []float64) {
	k := 0
	for dj := -ls.Patch; dj <= ls.Patch; dj++ {
		for di := -ls.Patch; di <= ls.Patch; di++ {
			out[k] = f.At(i+di, j+dj)
			k++
		}
	}
}

// TrainConfig controls surrogate training data generation.
type TrainConfig struct {
	// Fields is how many random training fields to simulate.
	Fields int
	// SamplesPerField is how many (patch, future-value) pairs to harvest
	// per training field.
	SamplesPerField int
	Epochs          int
	LR              float64
	Seed            uint64
}

// DefaultTrainConfig returns reproduction-scale settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Fields: 12, SamplesPerField: 400, Epochs: 120, LR: 5e-3, Seed: 3}
}

// Train learns the effective coarse-grain propagator of the FINE dynamics
// — the paper's "systematic ML-based coarse-graining" (§I): random fine
// fields are advanced K micro-steps by the explicit fine solver, and the
// stencil is fit on (restricted before-patch → restricted after-value)
// pairs. proto and fineSolver must describe the fine grid; the trained
// stencil then operates on 2× restricted fields.
func (ls *LearnedStencil) Train(proto *Field, fineSolver *Solver, tc TrainConfig) error {
	if tc.Fields < 1 || tc.SamplesPerField < 1 {
		return errors.New("tissue: empty stencil training plan")
	}
	rng := xrand.New(tc.Seed)
	dim := ls.featDim()
	var xRows, yRows [][]float64
	for fi := 0; fi < tc.Fields; fi++ {
		f := NewField(proto.NX, proto.NY, proto.H)
		// Random superposition of bumps → diverse local patches.
		nBumps := 1 + rng.Intn(4)
		for b := 0; b < nBumps; b++ {
			f.GaussianBump(rng.Float64()*float64(f.NX), rng.Float64()*float64(f.NY),
				rng.Range(1, 4)*f.H, rng.Range(0.5, 2))
		}
		before := Restrict(f)
		fineSolver.Steps(f, ls.K)
		after := Restrict(f)
		for s := 0; s < tc.SamplesPerField; s++ {
			i, j := rng.Intn(after.NX), rng.Intn(after.NY)
			row := make([]float64, dim)
			ls.patchFeatures(before, i, j, row)
			xRows = append(xRows, row)
			yRows = append(yRows, []float64{after.At(i, j)})
		}
	}
	x := tensor.FromRows(xRows)
	y := tensor.FromRows(yRows)
	ls.scaler = nn.FitScaler(x)
	xs := ls.scaler.Transform(x)
	widths := []int{dim, 1}
	if ls.Hidden > 0 {
		widths = []int{dim, ls.Hidden, 1}
	}
	ls.net = nn.NewMLP(ls.rng.Split(), nn.Tanh, 0, widths...)
	ls.pred = nil // workspaces belong to the previous net
	if _, err := ls.net.Fit(xs, y, nn.TrainConfig{
		Epochs: tc.Epochs, BatchSize: 64, Optimizer: nn.NewAdam(tc.LR), Seed: tc.Seed,
	}); err != nil {
		return fmt.Errorf("tissue: stencil training: %w", err)
	}
	ls.trained = true
	return nil
}

// Snapshot returns an independent trained stencil: a deep copy of the
// network weights with its own inference workspaces. The original can keep
// training (or be discarded) while snapshots serve; give each goroutine
// its own snapshot to run Advance in parallel — orders of magnitude
// cheaper than retraining per goroutine.
func (ls *LearnedStencil) Snapshot() *LearnedStencil {
	if !ls.trained {
		panic("tissue: Snapshot of untrained stencil")
	}
	return &LearnedStencil{
		K: ls.K, Patch: ls.Patch, Hidden: ls.Hidden,
		net:     ls.net.Snapshot(),
		scaler:  ls.scaler, // read-only after Train
		trained: true,
		rng:     ls.rng.Split(),
	}
}

// Advance implements MacroStepper: each call jumps the field K micro-steps
// using one learned sweep. k must be a multiple of K. The sweep reuses
// stencil-owned workspaces, so a LearnedStencil is NOT safe for
// concurrent use; give each goroutine its own trained stencil.
func (ls *LearnedStencil) Advance(f *Field, k int) {
	if !ls.trained {
		panic("tissue: LearnedStencil used before Train")
	}
	if k%ls.K != 0 {
		panic(fmt.Sprintf("tissue: advance %d not a multiple of stencil K=%d", k, ls.K))
	}
	jumps := k / ls.K
	dim := ls.featDim()
	// The feature batch and network workspaces are owned by the stencil
	// and reused across jumps and Advance calls: the sweep allocates
	// nothing in steady state.
	if ls.xBuf == nil {
		ls.xBuf = tensor.NewMatrix(f.NX*f.NY, dim)
	}
	x := ls.xBuf.Reshape(f.NX*f.NY, dim)
	if ls.pred == nil {
		ls.pred = ls.net.NewPredictor()
	}
	for jmp := 0; jmp < jumps; jmp++ {
		// Batch all nodes through the network in one forward pass,
		// standardizing each patch in place in its batch row.
		for j := 0; j < f.NY; j++ {
			for i := 0; i < f.NX; i++ {
				row := x.Row(j*f.NX + i)
				ls.patchFeatures(f, i, j, row)
				ls.scaler.TransformVecInto(row, row)
			}
		}
		out := ls.pred.Forward(x)
		for idx := range f.U {
			v := out.At(idx, 0)
			if v < 0 {
				v = 0 // concentrations cannot be negative
			}
			f.U[idx] = v
		}
	}
}

// ShortCircuitResult compares explicit and surrogate transport for E9.
type ShortCircuitResult struct {
	L2Error        float64 // field RMS error after the horizon
	ExplicitSteps  int
	SurrogateJumps int
}

// CompareShortCircuit runs the same initial field through K*jumps explicit
// fine micro-steps and through the coarse learned stencil, returning the
// coarse-grid L2 error. fineSolver must match the fine grid, the stencil
// the coarse grid.
func CompareShortCircuit(init *Field, fineSolver *Solver, ls *LearnedStencil, jumps int) (*ShortCircuitResult, error) {
	if !ls.trained {
		return nil, errors.New("tissue: stencil not trained")
	}
	explicit := init.Clone()
	fineSolver.Steps(explicit, ls.K*jumps)
	truthCoarse := Restrict(explicit)

	coarse := Restrict(init)
	ls.Advance(coarse, ls.K*jumps)

	return &ShortCircuitResult{
		L2Error:        L2Diff(truthCoarse, coarse),
		ExplicitSteps:  ls.K * jumps,
		SurrogateJumps: jumps,
	}, nil
}
