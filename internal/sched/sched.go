// Package sched implements the heterogeneous-workload scheduling substrate
// behind the paper's research issues 7–8 (§III-E): MLaroundHPC workloads
// mix simulation tasks with surrogate lookups that are orders of magnitude
// faster ("the ML learnt result can be huge factors (10^5 in our initial
// example) faster than simulated answers"), and the relative mix varies
// dynamically. The package provides three placement strategies — static
// partitioning, a dynamic shared queue, and class-split pools — plus the
// imbalance and utilization metrics that expose the difference.
package sched

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Class labels the heterogeneous task kinds of an MLaroundHPC workload.
type Class int

// Task classes.
const (
	Simulation Class = iota
	Training
	Inference
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Simulation:
		return "simulation"
	case Training:
		return "training"
	default:
		return "inference"
	}
}

// Task is one schedulable unit of work.
type Task struct {
	ID    int
	Class Class
	// Run executes the task's work.
	Run func()
}

// SpinTask builds a task that burns roughly the given amount of CPU work
// (a deterministic arithmetic loop, so results are comparable across
// strategies without timer sleep noise).
func SpinTask(id int, class Class, iterations int) Task {
	return Task{ID: id, Class: class, Run: func() {
		x := 1.0
		for i := 0; i < iterations; i++ {
			x = x*1.0000001 + 1e-9
		}
		atomic.StoreUint64(&sink, math.Float64bits(x))
	}}
}

// sink defeats dead-code elimination of SpinTask loops; stored atomically
// because tasks run concurrently.
var sink uint64

// Result captures one scheduling run.
type Result struct {
	Strategy string
	Makespan time.Duration
	// BusyTime is the per-worker total execution time.
	BusyTime []time.Duration
	// TaskCount is the per-worker number of executed tasks.
	TaskCount []int
}

// Imbalance returns (max busy − min busy)/mean busy: 0 for perfect balance.
func (r *Result) Imbalance() float64 {
	if len(r.BusyTime) == 0 {
		return 0
	}
	minB, maxB, sum := r.BusyTime[0], r.BusyTime[0], time.Duration(0)
	for _, b := range r.BusyTime {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
		sum += b
	}
	mean := float64(sum) / float64(len(r.BusyTime))
	if mean == 0 {
		return 0
	}
	return float64(maxB-minB) / mean
}

// Utilization returns total busy time divided by workers × makespan.
func (r *Result) Utilization() float64 {
	if r.Makespan == 0 || len(r.BusyTime) == 0 {
		return 0
	}
	var sum time.Duration
	for _, b := range r.BusyTime {
		sum += b
	}
	return float64(sum) / (float64(r.Makespan) * float64(len(r.BusyTime)))
}

// TotalTasks returns the number of tasks executed.
func (r *Result) TotalTasks() int {
	n := 0
	for _, c := range r.TaskCount {
		n += c
	}
	return n
}

// RunStatic pre-assigns tasks round-robin and lets each worker drain its
// own list: the placement that ignores heterogeneity and suffers when
// cheap inferences and expensive simulations interleave unevenly.
func RunStatic(tasks []Task, workers int) (*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("sched: workers=%d", workers)
	}
	assign := make([][]Task, workers)
	for i, t := range tasks {
		w := i % workers
		assign[w] = append(assign[w], t)
	}
	res := &Result{Strategy: "static", BusyTime: make([]time.Duration, workers), TaskCount: make([]int, workers)}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			for _, t := range assign[w] {
				t.Run()
				res.TaskCount[w]++
			}
			res.BusyTime[w] = time.Since(t0)
		}(w)
	}
	wg.Wait()
	res.Makespan = time.Since(start)
	return res, nil
}

// RunDynamic drains a shared queue: the dynamic load-balancing answer to
// heterogeneity ("runtime systems that are capable of real-time
// performance tuning and adaptive execution for workloads comprised of
// multiple heterogeneous tasks", issue 8).
func RunDynamic(tasks []Task, workers int) (*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("sched: workers=%d", workers)
	}
	queue := make(chan Task, len(tasks))
	for _, t := range tasks {
		queue <- t
	}
	close(queue)
	res := &Result{Strategy: "dynamic", BusyTime: make([]time.Duration, workers), TaskCount: make([]int, workers)}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var busy time.Duration
			for t := range queue {
				t0 := time.Now()
				t.Run()
				busy += time.Since(t0)
				res.TaskCount[w]++
			}
			res.BusyTime[w] = busy
		}(w)
	}
	wg.Wait()
	res.Makespan = time.Since(start)
	return res, nil
}

// RunSplitByClass dedicates worker sub-pools to task classes, sized
// proportionally to each class's task count (minimum one worker per
// non-empty class): the "load balancing the unlearnt and learnt
// separately" alternative from §III-A. Within each pool the queue is
// dynamic.
func RunSplitByClass(tasks []Task, workers int) (*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("sched: workers=%d", workers)
	}
	byClass := map[Class][]Task{}
	for _, t := range tasks {
		byClass[t.Class] = append(byClass[t.Class], t)
	}
	classes := make([]Class, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	// Deterministic order.
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			if classes[j] < classes[i] {
				classes[i], classes[j] = classes[j], classes[i]
			}
		}
	}
	if len(classes) > workers {
		return nil, fmt.Errorf("sched: %d classes but only %d workers", len(classes), workers)
	}
	// Proportional pool sizing with one-worker floor.
	pool := map[Class]int{}
	remaining := workers
	for _, c := range classes {
		pool[c] = 1
		remaining--
	}
	for remaining > 0 {
		// Give the next worker to the class with the most tasks per worker.
		var best Class
		bestRatio := -1.0
		for _, c := range classes {
			r := float64(len(byClass[c])) / float64(pool[c])
			if r > bestRatio {
				bestRatio = r
				best = c
			}
		}
		pool[best]++
		remaining--
	}
	res := &Result{Strategy: "split-by-class", BusyTime: make([]time.Duration, workers), TaskCount: make([]int, workers)}
	start := time.Now()
	var wg sync.WaitGroup
	workerID := 0
	for _, c := range classes {
		queue := make(chan Task, len(byClass[c]))
		for _, t := range byClass[c] {
			queue <- t
		}
		close(queue)
		for k := 0; k < pool[c]; k++ {
			w := workerID
			workerID++
			wg.Add(1)
			go func(w int, queue chan Task) {
				defer wg.Done()
				var busy time.Duration
				for t := range queue {
					t0 := time.Now()
					t.Run()
					busy += time.Since(t0)
					res.TaskCount[w]++
				}
				res.BusyTime[w] = busy
			}(w, queue)
		}
	}
	wg.Wait()
	res.Makespan = time.Since(start)
	return res, nil
}

// MixedWorkload builds the E10 scheduler workload: nSim expensive
// simulation tasks of VARYING cost (1–3x the base, as real simulations at
// different state points vary) and nInfer cheap inference tasks, arriving
// in an interleaved order. The cost ratio mirrors the paper's 10^k
// surrogate/simulation separation (bounded to keep test runtimes sane);
// the cost variance and arrival order are what break static placement —
// "the relative values will even vary over execution time" (issue 8).
func MixedWorkload(nSim, nInfer, simIters, inferIters int) []Task {
	tasks := make([]Task, 0, nSim+nInfer)
	id := 0
	for i := 0; i < nSim; i++ {
		// Deterministic 1x..4x cost spread across simulations: state
		// points differ in equilibration cost, so per-task cost cannot be
		// predicted by class alone — the heterogeneity static round-robin
		// cannot see. Simulations head the queue (the wrapper's cold-start
		// phase), inferences stream in behind them.
		tasks = append(tasks, SpinTask(id, Simulation, simIters*(1+i%4)))
		id++
	}
	for i := 0; i < nInfer; i++ {
		tasks = append(tasks, SpinTask(id, Inference, inferIters))
		id++
	}
	return tasks
}
