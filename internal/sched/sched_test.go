package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

func countingTasks(n int, class Class, counter *int64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{ID: i, Class: class, Run: func() { atomic.AddInt64(counter, 1) }}
	}
	return tasks
}

func TestClassStrings(t *testing.T) {
	if Simulation.String() != "simulation" || Training.String() != "training" || Inference.String() != "inference" {
		t.Fatal("class names wrong")
	}
}

func TestRunStaticExecutesAllTasks(t *testing.T) {
	var n int64
	res, err := RunStatic(countingTasks(37, Simulation, &n), 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 37 {
		t.Fatalf("executed %d tasks want 37", n)
	}
	if res.TotalTasks() != 37 {
		t.Fatalf("counted %d tasks want 37", res.TotalTasks())
	}
	// Round-robin: worker counts differ by at most 1.
	minC, maxC := res.TaskCount[0], res.TaskCount[0]
	for _, c := range res.TaskCount {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > 1 {
		t.Fatalf("static round-robin counts uneven: %v", res.TaskCount)
	}
}

func TestRunDynamicExecutesAllTasks(t *testing.T) {
	var n int64
	res, err := RunDynamic(countingTasks(53, Inference, &n), 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 53 || res.TotalTasks() != 53 {
		t.Fatalf("task conservation broken: %d / %d", n, res.TotalTasks())
	}
}

func TestRunSplitByClassExecutesAllTasks(t *testing.T) {
	var n int64
	tasks := append(countingTasks(20, Simulation, &n), countingTasks(30, Inference, &n)...)
	res, err := RunSplitByClass(tasks, 6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || res.TotalTasks() != 50 {
		t.Fatalf("task conservation broken: %d / %d", n, res.TotalTasks())
	}
}

func TestRunSplitByClassTooFewWorkers(t *testing.T) {
	var n int64
	tasks := append(countingTasks(2, Simulation, &n), countingTasks(2, Inference, &n)...)
	tasks = append(tasks, countingTasks(2, Training, &n)...)
	if _, err := RunSplitByClass(tasks, 2); err == nil {
		t.Fatal("3 classes on 2 workers accepted")
	}
}

func TestInvalidWorkerCounts(t *testing.T) {
	var n int64
	tasks := countingTasks(3, Simulation, &n)
	if _, err := RunStatic(tasks, 0); err == nil {
		t.Fatal("static 0 workers accepted")
	}
	if _, err := RunDynamic(tasks, 0); err == nil {
		t.Fatal("dynamic 0 workers accepted")
	}
	if _, err := RunSplitByClass(tasks, 0); err == nil {
		t.Fatal("split 0 workers accepted")
	}
}

func TestDynamicBeatsStaticOnHeterogeneousMix(t *testing.T) {
	// Heterogeneous workload: a few expensive sims + many cheap inferences.
	// Static round-robin strands expensive tasks unevenly; the dynamic
	// queue balances busy time. Compare imbalance metrics.
	mk := func() []Task { return MixedWorkload(8, 200, 2_000_000, 2_000) }
	static, err := RunStatic(mk(), 4)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := RunDynamic(mk(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.Imbalance() >= static.Imbalance() {
		// Timing noise could flip this on rare runs; require a margin
		// before declaring failure.
		if dynamic.Imbalance() > static.Imbalance()*0.8+0.05 {
			t.Fatalf("dynamic imbalance %.3f not clearly below static %.3f",
				dynamic.Imbalance(), static.Imbalance())
		}
	}
	if dynamic.Utilization() <= 0 || dynamic.Utilization() > 1.01 {
		t.Fatalf("utilization %g out of range", dynamic.Utilization())
	}
}

func TestImbalanceValues(t *testing.T) {
	r := &Result{BusyTime: []time.Duration{100, 100, 100}}
	if r.Imbalance() != 0 {
		t.Fatalf("balanced imbalance %g", r.Imbalance())
	}
	r = &Result{BusyTime: []time.Duration{0, 200}}
	if r.Imbalance() != 2 {
		t.Fatalf("imbalance %g want 2", r.Imbalance())
	}
	empty := &Result{}
	if empty.Imbalance() != 0 || empty.Utilization() != 0 {
		t.Fatal("empty result metrics should be 0")
	}
}

func TestSpinTaskRuns(t *testing.T) {
	task := SpinTask(1, Training, 1000)
	if task.Class != Training || task.ID != 1 {
		t.Fatal("task metadata wrong")
	}
	task.Run() // must not panic
}

func TestMixedWorkloadComposition(t *testing.T) {
	tasks := MixedWorkload(3, 7, 10, 10)
	if len(tasks) != 10 {
		t.Fatalf("%d tasks want 10", len(tasks))
	}
	sims, infs := 0, 0
	for _, task := range tasks {
		switch task.Class {
		case Simulation:
			sims++
		case Inference:
			infs++
		}
	}
	if sims != 3 || infs != 7 {
		t.Fatalf("composition %d/%d want 3/7", sims, infs)
	}
}
