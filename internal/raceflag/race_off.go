//go:build !race

// Package raceflag exposes whether the race detector is compiled in.
// Zero-allocation tests consult it: under -race, sync.Pool deliberately
// drops a fraction of Put items (to shake out lifetime bugs), so alloc
// counts through pooled hot paths are meaningless there.
package raceflag

// Enabled reports whether the binary was built with -race.
const Enabled = false
