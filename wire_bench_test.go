package repro

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/netserve"
	"repro/internal/serve"
	"repro/internal/xrand"
)

// BenchmarkWireQPS is the network mirror of BenchmarkFleetQPS: the same
// tenants, the same 16 clients per tenant, the same single-point query
// stream — but every query crosses a loopback TCP connection through the
// length-prefixed wire protocol. The acceptance bar (gated by bench_diff
// in CI) is 0 allocs/op in steady state and ≥50% of the in-process
// BenchmarkFleetQPS throughput at tenants=4: the wire must cost framing
// and syscalls, not allocations or lost batching. Each client goroutine
// gets its own connection, so the coalescer's cross-connection gather is
// exactly what keeps batch sizes (and throughput) up.
//
// Connection topology: one TCP connection per tenant, multiplexed by that
// tenant's 16 client goroutines. The Client is a multiplexing transport —
// concurrent callers' frames share buffered writes — so this is its
// designed operating point: a 16-deep request pipeline per connection
// whose bursts amortize syscalls on both sides, while the per-tenant
// coalescer still gathers across the tenants' separate connections.
func BenchmarkWireQPS(b *testing.B) {
	const clientsPerTenant = 16
	for _, tenants := range []int{1, 4} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			fl := fleet.New(fleet.Config{Coalescer: serve.Config{MaxBatch: 64}})
			defer fl.Close()
			names := make([]string, tenants)
			for t := 0; t < tenants; t++ {
				names[t] = fmt.Sprintf("t%d", t)
				if err := fl.Register(names[t], benchWrapper(b)); err != nil {
					b.Fatal(err)
				}
			}
			// FlushSpins 8 on both ends: a throughput-oriented deployment
			// donates more writer yields so a pipeline's frames share
			// syscalls (worth ~15% on one core; the default 2 favours
			// latency under sparse traffic).
			srv := netserve.NewServer(netserve.Config{Fleet: fl, FlushSpins: 8})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Close()

			clients := clientsPerTenant * tenants
			conns := make([]*netserve.Client, tenants)
			for i := range conns {
				cl, err := netserve.Dial(ln.Addr().String(), netserve.ClientConfig{FlushSpins: 8})
				if err != nil {
					b.Fatal(err)
				}
				conns[i] = cl
				defer cl.Close()
			}

			// Warm every pool (server reqCtx, client pending, frame
			// buffers, coalescer batches) before counting allocations.
			var warm sync.WaitGroup
			for i := 0; i < clients; i++ {
				warm.Add(1)
				go func(cl *netserve.Client, name string) {
					defer warm.Done()
					y := make([]float64, 1)
					std := make([]float64, 1)
					for j := 0; j < 64; j++ {
						if _, err := cl.QueryInto(name, []float64{0.1, 0.2}, y, std, time.Time{}); err != nil {
							b.Error(err)
							return
						}
					}
				}(conns[i%tenants], names[i%tenants])
			}
			warm.Wait()

			per := b.N / clients
			if per == 0 {
				per = 1
			}
			b.SetParallelism(1)
			b.ReportAllocs()
			b.ResetTimer()
			hists := make([]netserve.Hist, clients)
			var wg sync.WaitGroup
			for t := 0; t < tenants; t++ {
				for c := 0; c < clientsPerTenant; c++ {
					wg.Add(1)
					go func(cl *netserve.Client, name string, seed uint64, h *netserve.Hist) {
						defer wg.Done()
						rng := xrand.New(seed)
						x := make([]float64, 2)
						y := make([]float64, 1)
						std := make([]float64, 1)
						for i := 0; i < per; i++ {
							x[0] = rng.Range(-2, 2)
							x[1] = rng.Range(-1, 1)
							// Sample latency 1-in-8: full-rate stamping
							// costs two clock reads per query, visible
							// at this throughput on one core.
							sample := i&7 == 0
							var t0 time.Time
							if sample {
								t0 = time.Now()
							}
							if _, err := cl.QueryInto(name, x, y, std, time.Time{}); err != nil {
								b.Error(err)
								return
							}
							if sample {
								h.RecordSince(t0)
							}
						}
					}(conns[t], names[t], uint64(0xf1e0+31*t+c), &hists[t*clientsPerTenant+c])
				}
			}
			wg.Wait()
			b.StopTimer()
			var lat netserve.Hist
			for i := range hists {
				lat.Merge(&hists[i])
			}
			qps := float64(per*clients) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/s")
			b.ReportMetric(qps/float64(tenants), "queries/s/tenant")
			b.ReportMetric(float64(lat.Percentile(0.50).Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(lat.Percentile(0.99).Nanoseconds()), "p99-ns")
			if st, err := fl.TenantStats(names[0]); err == nil {
				b.ReportMetric(st.MeanBatch, "mean-batch")
			}
		})
	}
}

// BenchmarkResilientQPS is BenchmarkWireQPS at tenants=4 with the
// hardened client in front: same tenants, same 16 multiplexed clients per
// connection, but every query passes through ResilientClient's breaker
// check, round-robin pick and retry accounting. The acceptance bar (gated
// by bench_diff in CI) is 0 allocs/op and ≥0.9× the plain
// BenchmarkWireQPS tenants=4 throughput: failure-domain hardening must
// cost bookkeeping, not allocations or throughput.
func BenchmarkResilientQPS(b *testing.B) {
	const clientsPerTenant = 16
	const tenants = 4
	fl := fleet.New(fleet.Config{Coalescer: serve.Config{MaxBatch: 64}})
	defer fl.Close()
	names := make([]string, tenants)
	for t := 0; t < tenants; t++ {
		names[t] = fmt.Sprintf("t%d", t)
		if err := fl.Register(names[t], benchWrapper(b)); err != nil {
			b.Fatal(err)
		}
	}
	srv := netserve.NewServer(netserve.Config{Fleet: fl, FlushSpins: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	clients := clientsPerTenant * tenants
	// One pooled connection per tenant mirrors the plain benchmark's
	// topology; the pool exists for failover, not extra parallelism.
	conns := make([]*netserve.ResilientClient, tenants)
	for i := range conns {
		cl, err := netserve.DialResilient(ln.Addr().String(), netserve.ResilientConfig{
			Conns:  1,
			Client: netserve.ClientConfig{FlushSpins: 8},
		})
		if err != nil {
			b.Fatal(err)
		}
		conns[i] = cl
		defer cl.Close()
	}

	var warm sync.WaitGroup
	for i := 0; i < clients; i++ {
		warm.Add(1)
		go func(cl *netserve.ResilientClient, name string) {
			defer warm.Done()
			y := make([]float64, 1)
			std := make([]float64, 1)
			for j := 0; j < 64; j++ {
				if _, err := cl.QueryInto(name, []float64{0.1, 0.2}, y, std, time.Time{}); err != nil {
					b.Error(err)
					return
				}
			}
		}(conns[i%tenants], names[i%tenants])
	}
	warm.Wait()

	per := b.N / clients
	if per == 0 {
		per = 1
	}
	b.SetParallelism(1)
	b.ReportAllocs()
	b.ResetTimer()
	hists := make([]netserve.Hist, clients)
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		for c := 0; c < clientsPerTenant; c++ {
			wg.Add(1)
			go func(cl *netserve.ResilientClient, name string, seed uint64, h *netserve.Hist) {
				defer wg.Done()
				rng := xrand.New(seed)
				x := make([]float64, 2)
				y := make([]float64, 1)
				std := make([]float64, 1)
				for i := 0; i < per; i++ {
					x[0] = rng.Range(-2, 2)
					x[1] = rng.Range(-1, 1)
					sample := i&7 == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					if _, err := cl.QueryInto(name, x, y, std, time.Time{}); err != nil {
						b.Error(err)
						return
					}
					if sample {
						h.RecordSince(t0)
					}
				}
			}(conns[t], names[t], uint64(0xa7e0+31*t+c), &hists[t*clientsPerTenant+c])
		}
	}
	wg.Wait()
	b.StopTimer()
	var lat netserve.Hist
	for i := range hists {
		lat.Merge(&hists[i])
	}
	qps := float64(per*clients) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/s")
	b.ReportMetric(float64(lat.Percentile(0.50).Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(lat.Percentile(0.99).Nanoseconds()), "p99-ns")
	var retries int64
	for _, cl := range conns {
		retries += cl.Stats().Retries
	}
	b.ReportMetric(float64(retries), "retries")
}
