// Mlcontrol: objective-driven computational campaigns (paper §I MLControl,
// ref [12]) — the surrogate's real-time predictions steer which simulation
// to run next, trading exploration (high UQ) against exploitation (high
// predicted objective).
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(29)

	// The campaign objective: find the input maximizing a hidden response
	// surface, paying one expensive "simulation" per evaluation.
	hidden := func(x []float64) float64 {
		return math.Exp(-4*(x[0]-0.3)*(x[0]-0.3)) + 0.6*math.Exp(-8*(x[0]-0.85)*(x[0]-0.85))
	}
	oracle := core.OracleFunc{In: 1, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{hidden(x)}, nil
	}}

	sur := core.NewNNSurrogate(1, 1, []int{24}, 0.15, rng)
	sur.Epochs = 200

	// Seed with a handful of random evaluations.
	xs := tensor.NewMatrix(0, 1)
	ys := tensor.NewMatrix(0, 1)
	evaluate := func(x float64) float64 {
		y, _ := oracle.Run([]float64{x})
		xs.Data = append(xs.Data, x)
		xs.Rows++
		ys.Data = append(ys.Data, y[0])
		ys.Rows++
		return y[0]
	}
	for i := 0; i < 6; i++ {
		evaluate(rng.Float64())
	}

	// Candidate grid the controller chooses from.
	cands := tensor.NewMatrix(101, 1)
	for i := 0; i <= 100; i++ {
		cands.Set(i, 0, float64(i)/100)
	}

	best := math.Inf(-1)
	bestX := 0.0
	fmt.Println("MLControl campaign (UCB acquisition, kappa=1.5):")
	for round := 1; round <= 8; round++ {
		if err := sur.Train(xs, ys); err != nil {
			panic(err)
		}
		ctrl := &core.Controller{
			Surrogate: sur, Kappa: 1.5,
			Objective: func(y []float64) float64 { return y[0] },
		}
		pick := ctrl.Next(cands)
		x := cands.At(pick, 0)
		y := evaluate(x)
		if y > best {
			best, bestX = y, x
		}
		fmt.Printf("  round %d: controller picked x=%.2f → objective %.4f (best so far %.4f at x=%.2f)\n",
			round, x, y, best, bestX)
	}
	fmt.Printf("\nTrue optimum is x=0.30 with value %.4f; campaign found x=%.2f → %.4f\n",
		hidden([]float64{0.3}), bestX, best)
	fmt.Printf("Total expensive evaluations: %d (vs 101 for exhaustive sweep)\n", xs.Rows)
}
