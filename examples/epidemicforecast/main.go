// Epidemicforecast: the DEFSI exemplar (paper §II-A) end to end — simulate
// a synthetic state, train the two-branch network on simulation-generated
// synthetic seasons, then forecast county-level incidence from coarse,
// noisy, underreported state-level surveillance.
package main

import (
	"fmt"

	"repro/internal/epi"
	"repro/internal/xrand"
)

func main() {
	popCfg := epi.DefaultPopulationConfig()
	popCfg.Counties = 5
	popCfg.MeanCountyPop = 400
	net, err := epi.GeneratePopulation(popCfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Synthetic state: %d people in %d counties (mean degree %.1f)\n",
		len(net.People), net.Counties, net.MeanDegree())

	const weeks = 12
	base := epi.DefaultDiseaseParams()
	cfg := epi.DefaultDEFSIConfig()
	cfg.TrainSeasons = 20
	cfg.Epochs = 60

	fmt.Printf("Training DEFSI on %d simulated seasons...\n\n", cfg.TrainSeasons)
	d, err := epi.TrainDEFSI(net, []epi.DiseaseParams{base}, weeks, cfg)
	if err != nil {
		panic(err)
	}

	// The "real" season to forecast (held out, slightly different beta).
	truthParams := base
	truthParams.Beta *= 1.15
	truth, err := epi.Simulate(net, truthParams, weeks, 424242)
	if err != nil {
		panic(err)
	}
	rng := xrand.New(3)
	sv := epi.Surveil(truth.WeeklyState, cfg.ReportRate, cfg.NoiseFrac, rng)

	fmt.Println("Observed surveillance (state level, underreported+noisy) vs truth:")
	for w := 0; w < weeks; w++ {
		fmt.Printf("  week %2d: observed %6.1f   true state incidence %6.0f\n", w, sv[w], truth.WeeklyState[w])
	}

	fmt.Println("\nCounty-level forecasts from state-level surveillance:")
	for _, t := range []int{cfg.Window, weeks / 2, weeks - 1} {
		pred, err := d.ForecastCounty(sv, t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  week %d:\n", t)
		for c := 0; c < net.Counties; c++ {
			fmt.Printf("    county %d: forecast %6.1f   truth %6.0f\n", c, pred[c], truth.WeeklyCounty[t][c])
		}
	}

	// Compare against the mechanistic baseline.
	ef := epi.NewEpiFastLike(net, base, weeks, cfg.ReportRate, 9)
	if err := ef.Calibrate(sv, cfg.Window); err != nil {
		panic(err)
	}
	defsiEval, _ := epi.EvaluateForecasts(truth, cfg.Window,
		func(t int) (float64, error) { return d.ForecastState(sv, t) },
		func(t int) ([]float64, error) { return d.ForecastCounty(sv, t) }, "DEFSI")
	efEval, _ := epi.EvaluateForecasts(truth, cfg.Window, ef.ForecastState, ef.ForecastCounty, "EpiFast-like")
	fmt.Printf("\nRMSE over weeks %d..%d:\n", cfg.Window, weeks-1)
	fmt.Printf("  %-14s state %7.2f   county %7.2f\n", defsiEval.Method, defsiEval.StateRMSE, defsiEval.CountyRMSE)
	fmt.Printf("  %-14s state %7.2f   county %7.2f\n", efEval.Method, efEval.StateRMSE, efEval.CountyRMSE)
}
