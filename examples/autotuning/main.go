// Autotuning: MLautotuning of the MD timestep (paper §III-D, ref [9]) —
// "training an Artificial Neural Net (ANN) to ensure that the simulation
// runs at its optimal speed (using for example, the lowest allowable
// timestep dt ...) while retaining the accuracy of the final result".
package main

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/md"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(11)
	cfg := md.DefaultConfig()
	cfg.L = 7

	// Quality probe: short run at candidate dt; outputs (tempErr, blowup).
	probe := func(p md.Params, dt float64) []float64 {
		c := cfg
		c.Dt = dt
		c.Seed = rng.Uint64()
		sys, err := md.NewSystem(p, c)
		if err != nil {
			panic(err)
		}
		res, err := sys.Run(context.Background(), md.RunConfig{
			EquilSteps: 100, SampleSteps: 300, SampleEvery: 5, Bins: 20,
		})
		if err != nil {
			panic(err)
		}
		tempErr := math.Abs(res.MeanTemperature - 1)
		blowup := 0.0
		if math.IsNaN(tempErr) || tempErr > 3 {
			blowup, tempErr = 1, 3
		}
		return []float64{tempErr, blowup}
	}

	dtGrid := []float64{0.002, 0.005, 0.01, 0.02, 0.035, 0.05, 0.07, 0.09}
	fmt.Println("Collecting training probes over (h, c, dt)...")
	x := tensor.NewMatrix(0, 3)
	y := tensor.NewMatrix(0, 2)
	for _, h := range []float64{4, 6, 8} {
		for _, conc := range []float64{0.03, 0.06, 0.10} {
			p := md.Params{H: h, Zp: 1, Zn: 1, C: conc, D: 1}
			for _, dt := range dtGrid {
				q := probe(p, dt)
				x.Data = append(x.Data, h, conc, dt)
				x.Rows++
				y.Data = append(y.Data, q...)
				y.Rows++
			}
		}
	}
	fmt.Printf("  %d probes collected\n\n", x.Rows)

	sur := core.NewNNSurrogate(3, 2, []int{30, 48}, 0, rng)
	sur.Epochs = 400
	tuner := core.NewAutotuner(sur, 2, 1)
	if err := tuner.Fit(x, y); err != nil {
		panic(err)
	}

	cands := tensor.NewMatrix(len(dtGrid), 1)
	for i, dt := range dtGrid {
		cands.Set(i, 0, dt)
	}
	fmt.Println("Tuned timesteps for fresh systems (largest dt with predicted stability):")
	for _, tc := range []struct{ h, c float64 }{{5, 0.04}, {7, 0.08}, {6, 0.05}} {
		ctl, err := tuner.Tune([]float64{tc.h, tc.c}, cands,
			func(q []float64) bool { return q[0] < 0.12 && q[1] < 0.5 },
			func(c []float64) float64 { return c[0] })
		if err != nil {
			fmt.Printf("  h=%g c=%g: no stable dt found (%v)\n", tc.h, tc.c, err)
			continue
		}
		// Verify with a real probe.
		q := probe(md.Params{H: tc.h, Zp: 1, Zn: 1, C: tc.c, D: 1}, ctl[0])
		fmt.Printf("  h=%g c=%g → dt=%g (measured tempErr=%.3f, stable=%v)\n",
			tc.h, tc.c, ctl[0], q[0], q[0] < 0.12)
	}
	fmt.Println("\nA default-conservative dt of 0.002 would waste",
		"10-40x the steps the tuned dt needs for the same simulated time.")
}
