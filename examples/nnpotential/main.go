// Nnpotential: the Behler–Parrinello exemplar (paper §II-C2) — train a
// neural network potential against an expensive reference oracle, compare
// cost and accuracy, and show the active-learning loop acquiring the most
// uncertain configurations first.
package main

import (
	"fmt"
	"time"

	"repro/internal/potential"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(17)
	oracle := potential.NewAbInitio()
	const atoms = 12

	base, err := potential.RandomConfiguration(atoms, 4.5, 1.0, rng)
	if err != nil {
		panic(err)
	}
	mk := func(n int, amp float64) ([]*potential.Configuration, []float64) {
		cs := make([]*potential.Configuration, n)
		es := make([]float64, n)
		for i := 0; i < n; i++ {
			cs[i] = potential.Perturb(base, amp, rng)
			es[i] = oracle.Energy(cs[i])
		}
		return cs, es
	}

	fmt.Println("Labelling 120 configurations with the reference oracle...")
	trainC, trainE := mk(120, 0.25)
	testC, testE := mk(30, 0.25)

	sf := potential.DefaultSymmetryFunctions()
	pot := potential.NewNNPotential(sf, []int{24, 24}, rng.Split())
	pot.Epochs = 150
	if err := pot.Fit(trainC, trainE); err != nil {
		panic(err)
	}
	fmt.Printf("  test MAE: %.4f (energy units)\n\n", pot.MAE(testC, testE))

	// Cost comparison.
	t0 := time.Now()
	for i := 0; i < 20; i++ {
		oracle.Energy(testC[i%len(testC)])
	}
	oracleSec := time.Since(t0).Seconds() / 20
	t0 = time.Now()
	for i := 0; i < 200; i++ {
		pot.PredictEnergy(testC[i%len(testC)])
	}
	nnSec := time.Since(t0).Seconds() / 200
	fmt.Printf("Per-energy cost: reference %.3gs vs NN %.3gs → %.0fx speedup\n",
		oracleSec, nnSec, oracleSec/nnSec)
	fmt.Println("(the paper reports >1000x for ML vs quantum-mechanical evaluation;")
	fmt.Println(" the ratio grows with oracle cost — increase SCFIters/atoms to see it)")

	// Active learning demo.
	fmt.Println("\nActive learning: committee-variance acquisition vs random:")
	pool := make([]*potential.Configuration, 150)
	for i := range pool {
		amp := 0.15
		if i%3 == 0 {
			amp = 0.5
		}
		pool[i] = potential.Perturb(base, amp, rng)
	}
	for _, strat := range []potential.ALStrategy{potential.ALRandom, potential.ALCommitteeVariance} {
		cfg := potential.ActiveLearnConfig{
			Strategy: strat, CommitteeSize: 2, Hidden: []int{16},
			InitialSamples: 15, BatchSize: 15, MaxSamples: 75, Seed: 18,
		}
		curve, err := potential.ActiveLearn(oracle, sf, pool, testC, testE, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-20s:", strat)
		for _, r := range curve {
			fmt.Printf(" %d→%.3f", r.Samples, r.TestMAE)
		}
		fmt.Println()
	}
}
