// Parallelsgd: the four parallel model-synchronization patterns of paper
// §III-A — Locking, Rotation, Allreduce, Asynchronous — racing on the same
// regression problem, plus ring vs central collectives.
package main

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(23)
	prob, _ := parallel.NewRandomSGDProblem(4000, 32, 0.01, rng)

	fmt.Println("SGD under the four computation models (4000x32 regression):")
	fmt.Printf("  %-14s %-10s %-12s %-12s\n", "model", "workers", "final loss", "seconds")
	for _, model := range parallel.AllModels() {
		for _, w := range []int{1, 4} {
			tr, err := parallel.RunSGD(prob, model, parallel.SGDConfig{
				Workers: w, Epochs: 150, LR: 0.1, Seed: 24,
			})
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-14s %-10d %-12.4g %-12.4g\n",
				model, w, tr.Final(), tr.Seconds[len(tr.Seconds)-1])
		}
	}

	fmt.Println("\nAllreduce collectives head-to-head at 8 workers:")
	for _, ring := range []bool{false, true} {
		name := "central(lock)"
		if ring {
			name = "ring"
		}
		tr, err := parallel.RunSGD(prob, parallel.Allreduce, parallel.SGDConfig{
			Workers: 8, Epochs: 150, LR: 0.1, UseRing: ring, Seed: 24,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-14s final loss %.4g in %.4gs\n", name, tr.Final(), tr.Seconds[len(tr.Seconds)-1])
	}

	fmt.Println("\nK-means (Allreduce pattern) and Ising Gibbs (MCMC pattern):")
	pts, _ := parallel.GaussianBlobs(2000, 5, 4, 0.4, rng)
	km, err := parallel.KMeans(pts, 5, 12, 4, true, 25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  k-means SSE: %.4g → %.4g over %d iterations\n",
		km.SSEHistory[0], km.SSEHistory[len(km.SSEHistory)-1], km.Iterations)
	mag, err := parallel.IsingRun(32, 0.7, 80, 4, false, 26)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  Ising |m| at beta=0.7 (ordered phase): %.3f (expect ~1)\n", mag)
	mag, err = parallel.IsingRun(32, 0.2, 80, 4, false, 27)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  Ising |m| at beta=0.2 (disordered):    %.3f (expect ~0)\n", mag)

	fmt.Println("\nCCD matrix factorization under model rotation:")
	mf := parallel.NewRandomMFProblem(80, 60, 4, 0.3, 0.01, rng)
	_, hist, err := parallel.RunCCD(mf, 4, 25, 0.05, 28)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  RMSE: %.4g → %.4g over %d epochs (4 workers, zero locks)\n",
		hist[0], hist[len(hist)-1], len(hist))
}
