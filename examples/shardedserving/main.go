// Sharded serving: the stall-free MLaroundHPC runtime under load. An
// expensive "simulation" is wrapped in a ShardedWrapper — the input space
// is hash-partitioned across shards, each shard serves from a published
// surrogate while background refits train the next generation on fresh
// oracle results, and UQ-rejected batch rows fan out over a bounded oracle
// worker pool. Concurrent clients hammer the wrapper throughout; the
// latency histogram shows retraining never freezes serving. A final
// high-QPS phase runs the same traffic through the adaptive micro-batch
// coalescer (repro.Serve) with the timer-driven auto-refitter keeping
// shards fresh, comparing direct per-query serving with coalesced
// serving.
package main

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	rng := repro.NewRand(7)

	// The "simulation": an analytic surface with artificial latency, the
	// stand-in for an external HPC run. It is latency-bound, so the
	// oracle worker pool overlaps runs even on one core.
	oracle := repro.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		time.Sleep(500 * time.Microsecond)
		return []float64{math.Sin(3*x[0])*math.Cos(2*x[1]) + 0.3*x[0]}, nil
	}}

	// One hidden layer with dropout feeding the output: the canonical
	// MC-dropout serving shape, which the batched UQ path runs as a
	// single fused panel matmul per micro-batch. MaxBatch matches the
	// coalescer's micro-batch size so every dispatch is one fused pass.
	factory := repro.NewNNSurrogateFactory(2, 1, []int{48}, 0.1, rng, func(s *repro.NNSurrogate) {
		s.Epochs = 150
		s.MCPasses = 10
		s.MaxBatch = 64
	})
	w := repro.NewShardedWrapper(oracle, factory, repro.ShardedConfig{
		Shards:          2,
		MinTrainSamples: 40, // per shard
		RetrainEvery:    60, // refit a shard in the background every 60 fresh samples
		UQThreshold:     0.35,
		OracleWorkers:   8,
		// Bounded retention: each shard keeps a sliding window of its most
		// recent samples, so background refits stay O(window) no matter
		// how long the server runs.
		Retention: repro.Retention{Policy: repro.RetainWindow, MaxSamples: 400},
	})

	fmt.Println("Phase 1: pretrain — oracle fan-out fills all shards in parallel")
	design := repro.NewMatrix(240, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	t0 := time.Now()
	if err := w.Pretrain(design); err != nil {
		panic(err)
	}
	fmt.Printf("  %d samples across shards %v in %v\n\n", w.TrainingSetSize(), w.ShardSizes(), time.Since(t0))

	fmt.Println("Phase 2: serve under load while shards keep retraining in the background")
	const (
		clients        = 4
		queriesPerGoro = 400
	)
	var surrogateHits, simulations atomic.Int64
	latencies := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int, seed uint64) {
			defer wg.Done()
			crng := repro.NewRand(seed)
			for i := 0; i < queriesPerGoro; i++ {
				// Mostly in-distribution traffic; occasional novel points
				// fail the UQ gate, run the simulation and feed the
				// training sets — which triggers background refits.
				scale := 1.0
				if crng.Float64() < 0.05 {
					scale = 1.8
				}
				x := []float64{scale * crng.Range(-1, 1), scale * crng.Range(-1, 1)}
				q0 := time.Now()
				_, src, _, err := w.Query(x)
				latencies[id] = append(latencies[id], time.Since(q0))
				if err != nil {
					panic(err)
				}
				if src == repro.FromSurrogate {
					surrogateHits.Add(1)
				} else {
					simulations.Add(1)
				}
			}
		}(c, uint64(100+c))
	}
	wg.Wait()
	if err := w.Wait(); err != nil {
		panic(err)
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }

	total := int64(clients * queriesPerGoro)
	led := w.Ledger()
	fmt.Printf("  %d queries from %d clients: %d surrogate (%.0f%%), %d simulated\n",
		total, clients, surrogateHits.Load(),
		100*float64(surrogateHits.Load())/float64(total), simulations.Load())
	fmt.Printf("  query latency p50=%v p90=%v p99=%v (refits ran concurrently: %d fits)\n",
		pct(0.50), pct(0.90), pct(0.99), led.NTrainingRuns)
	fmt.Printf("  final shard sizes %v, training set %d (window-bounded)\n\n", w.ShardSizes(), w.TrainingSetSize())

	fmt.Println("Phase 3: high-QPS load generator — direct vs coalesced serving")
	// The auto-refitter replaces query-path retrain triggers: stale
	// shards refresh on a timer while the coalescer gathers concurrent
	// single-point queries into fused micro-batches.
	w.StartAutoRefit(20 * time.Millisecond)
	defer w.StopAutoRefit()
	handle := repro.Serve(w, repro.CoalescerConfig{MaxBatch: 64})
	defer handle.Close()

	const loadClients = 32
	loadgen := func(label string, query func(rng *repro.Rand) error) {
		var wg sync.WaitGroup
		var n atomic.Int64
		t0 := time.Now()
		for cID := 0; cID < loadClients; cID++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				crng := repro.NewRand(seed)
				for i := 0; i < 1500; i++ {
					if err := query(crng); err != nil {
						panic(err)
					}
					n.Add(1)
				}
			}(uint64(7000 + cID))
		}
		wg.Wait()
		dt := time.Since(t0)
		fmt.Printf("  %-10s %6d queries from %d clients in %8v  → %8.0f queries/s\n",
			label, n.Load(), loadClients, dt.Round(time.Millisecond),
			float64(n.Load())/dt.Seconds())
	}
	point := func(crng *repro.Rand) []float64 {
		return []float64{crng.Range(-1, 1), crng.Range(-1, 1)}
	}
	loadgen("direct", func(crng *repro.Rand) error {
		_, _, _, err := w.Query(point(crng))
		return err
	})
	loadgen("coalesced", func(crng *repro.Rand) error {
		_, err := handle.Query(point(crng))
		return err
	})
	st := handle.Stats()
	fmt.Printf("  coalescer gathered %d queries into %d micro-batches (mean batch %.1f)\n",
		st.Queries, st.Batches, st.MeanBatch())
	for si, shard := range w.Status() {
		fmt.Printf("  shard %d: %d samples, staleness %d, generation %d\n",
			si, shard.Samples, shard.Stale, shard.Generation)
	}
	fmt.Println()

	fmt.Println("Ledger (paper §III-D accounting):")
	led = w.Ledger()
	fmt.Printf("  %v\n", led)
	fmt.Printf("  measured effective speedup S = %.2f\n", led.EffectiveSpeedup(1))
}
