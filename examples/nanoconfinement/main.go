// Nanoconfinement: the paper's flagship MLaroundHPC exemplar (§II-C1,
// §III-D). Generate confined-electrolyte MD runs over the experimental
// parameter ranges, train the D=5 density surrogate, and predict
// contact/mid/peak densities for unseen state points — "generate accurate
// predictions for un-simulated state-points (by entirely bypassing
// simulations)".
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/md"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(7)
	cfg := md.DefaultConfig()
	cfg.L = 8
	rc := md.RunConfig{EquilSteps: 200, SampleSteps: 600, SampleEvery: 6, Bins: 30}
	oracle := md.NewOracle(cfg, rc)

	// Sampling plan over (h, z+, z-, c, d) — the paper's five features.
	const runs = 120
	lo := []float64{4, 1, 1, 0.02, 0.8}
	hi := []float64{10, 3, 3, 0.12, 1.2}
	design := data.LatinHypercube(runs, 5, lo, hi, rng)
	for i := 0; i < design.Rows; i++ {
		for _, j := range []int{1, 2} {
			v := float64(int(design.At(i, j) + 0.5))
			if v < 1 {
				v = 1
			}
			if v > 3 {
				v = 3
			}
			design.Set(i, j, v)
		}
	}

	fmt.Printf("Running %d MD simulations (this is the expensive part)...\n", runs)
	ds := &data.Dataset{FeatureNames: md.FeatureNames(), TargetNames: md.TargetNames()}
	t0 := time.Now()
	for i := 0; i < design.Rows; i++ {
		y, err := oracle.Run(design.Row(i))
		if err != nil {
			panic(err)
		}
		ds.Append(design.Row(i), y)
	}
	simSec := time.Since(t0).Seconds()
	fmt.Printf("  %d runs in %.1fs (%.3fs/run)\n\n", runs, simSec, simSec/runs)

	train, test := ds.Split(0.7, rng) // the paper's 70/30 split
	sur := core.NewNNSurrogate(5, 3, []int{30, 48}, 0.1, rng)
	sur.Epochs = 300
	fmt.Printf("Training surrogate on %d runs (testing on %d)...\n", train.Len(), test.Len())
	if err := sur.Train(train.X, train.Y); err != nil {
		panic(err)
	}

	fmt.Println("\nPredictions for unseen state points (surrogate vs simulation):")
	fmt.Printf("  %-38s %-28s %-28s\n", "params (h,z+,z-,c,d)", "surrogate (cont,mid,peak)", "simulation (cont,mid,peak)")
	for i := 0; i < 3; i++ {
		x := test.X.Row(i)
		t0 = time.Now()
		pred := sur.Predict(x)
		lookupSec := time.Since(t0).Seconds()
		truth := test.Y.Row(i)
		fmt.Printf("  %-38v %-28v %-28v\n", trunc(x), trunc(pred), trunc(truth))
		fmt.Printf("    lookup took %.2gs vs %.2gs simulation → %.0fx\n",
			lookupSec, simSec/runs, simSec/runs/lookupSec)
	}
}

func trunc(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(int(v*1000+0.5)) / 1000
	}
	return out
}
