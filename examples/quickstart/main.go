// Quickstart: wrap an expensive simulation in the MLaroundHPC Wrapper and
// watch the UQ gate shift traffic from simulation to surrogate while the
// ledger tracks effective performance (paper §I, §III-D).
package main

import (
	"fmt"
	"math"
	"time"

	"repro"
	"repro/internal/core"
)

func main() {
	rng := repro.NewRand(1)

	// A toy "simulation": an analytic function with artificial cost, the
	// stand-in for a multi-hour HPC run.
	oracle := repro.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		time.Sleep(2 * time.Millisecond) // pretend this is expensive
		return []float64{math.Sin(3*x[0]) * math.Cos(2*x[1])}, nil
	}}

	sur := repro.NewNNSurrogate(2, 1, []int{32, 32}, 0.1, rng)
	sur.Epochs = 200
	w := repro.NewWrapper(oracle, sur, repro.WrapperConfig{
		MinTrainSamples: 150,
		UQThreshold:     0.15,
	})

	fmt.Println("Phase 1: cold start — every query runs the simulation")
	for i := 0; i < 150; i++ {
		x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		if _, _, _, err := w.Query(x); err != nil {
			panic(err)
		}
	}
	fmt.Printf("  after %d queries: %v\n\n", w.TrainingSetSize(), w.Ledger())

	fmt.Println("Phase 2: trained — confident queries are answered by the surrogate")
	surrogateHits := 0
	const phase2 = 400
	for i := 0; i < phase2; i++ {
		x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		_, src, _, err := w.Query(x)
		if err != nil {
			panic(err)
		}
		if src == core.FromSurrogate {
			surrogateHits++
		}
	}
	led := w.Ledger()
	fmt.Printf("  surrogate served %d/%d queries (%.0f%%)\n", surrogateHits, phase2,
		100*float64(surrogateHits)/phase2)
	fmt.Printf("  %v\n\n", led.String())

	fmt.Println("Effective performance (paper §III-D formula on measured times):")
	fmt.Printf("  Tseq=%v Tlookup=%v Tlearn/sample=%v\n",
		led.MeanSimTime(), led.MeanLookupTime(), led.MeanLearnTimePerSample())
	fmt.Printf("  measured effective speedup S = %.2f\n", led.EffectiveSpeedup(1))
	fmt.Printf("  asymptotic limit Tseq/Tlookup = %.0f\n",
		led.MeanSimTime().Seconds()/led.MeanLookupTime().Seconds())
}
