// Tissue: the virtual-tissue exemplar (paper §II-B) — cells coupled to an
// advection-diffusion field, with the learned coarse-grain macro-stepper
// short-circuiting the transport inner loop ("the elimination of short
// time scales").
package main

import (
	"fmt"
	"time"

	"repro/internal/tissue"
	"repro/internal/xrand"
)

func main() {
	const size = 48
	params := tissue.PDEParams{Diff: 0.4, VX: 0.05, VY: 0, Decay: 0.01, Dt: 0.2}

	// Train the learned stencil: it jumps K=8 fine micro-steps per sweep
	// on a 2x coarse grid.
	fmt.Println("Training the coarse-grain transport surrogate...")
	fine := tissue.NewField(size, size, 1)
	ls := tissue.NewLearnedStencil(8, 1, 0, xrand.New(5))
	tc := tissue.DefaultTrainConfig()
	tc.Fields = 12
	if err := ls.Train(fine, tissue.NewSolver(params, fine), tc); err != nil {
		panic(err)
	}

	// Accuracy + speed of the short-circuit on a fresh field.
	test := tissue.NewField(size, size, 1)
	test.GaussianBump(30, 18, 3, 1.5)
	test.GaussianBump(12, 34, 4, 0.8)

	explicit := test.Clone()
	t0 := time.Now()
	tissue.NewSolver(params, explicit).Steps(explicit, 8*4)
	explicitSec := time.Since(t0).Seconds()

	coarse := tissue.Restrict(test)
	t0 = time.Now()
	ls.Advance(coarse, 8*4)
	surSec := time.Since(t0).Seconds()

	err := tissue.L2Diff(tissue.Restrict(explicit), coarse)
	fmt.Printf("  32 micro-steps: explicit %.4gs vs learned %.4gs (%.1fx), L2 err %.4f\n\n",
		explicitSec, surSec, explicitSec/surSec, err)

	// Full tissue simulation with live cells under both steppers.
	fmt.Println("Tissue with dividing cells, nutrient field replenished by secretion:")
	run := func(stepper tissue.MacroStepper) int {
		field := tissue.NewField(size/2, size/2, 2)
		for i := range field.U {
			field.U[i] = 1.5
		}
		sol := tissue.NewSolver(params, field)
		cp := tissue.DefaultCellParams()
		tis, err := tissue.NewTissue(field, sol, cp, 12, 8, 21)
		if err != nil {
			panic(err)
		}
		if stepper != nil {
			tis.Stepper = stepper
		}
		tis.Steps(12)
		return tis.AliveCount()
	}
	aliveExplicit := run(nil)
	aliveSurrogate := run(ls)
	fmt.Printf("  cells alive after 12 agent steps: explicit transport %d, learned transport %d\n",
		aliveExplicit, aliveSurrogate)
	fmt.Println("  (agent dynamics are preserved under the learned transport stepper)")
}
