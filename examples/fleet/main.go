// Multi-tenant serving fleet: one dispatch plane for every surrogate.
// The paper's "learning everywhere" thesis puts an ML stand-in at every
// layer of an HPC workload; this example runs three of them — a
// pair-potential energy surface, a tissue-transport response and an
// epidemic peak calibrator — as named tenants of one repro.Fleet in a
// single process. Each tenant is a sharded, double-buffered wrapper
// behind its own micro-batch coalescer; all three coalescers draw on the
// fleet's shared batch pool, admission is bounded per tenant, and the
// per-tenant stats (QPS, batch width, p99, staleness) come from one
// registry. A middle phase deregisters a tenant mid-traffic: its
// in-flight queries drain gracefully while the neighbours keep serving.
// The final phase puts the same fleet on a TCP wire (repro.WireServer):
// remote clients speak the length-prefixed binary protocol, their frames
// coalesce across connections into the same per-tenant batches, and
// deadline/admission sheds come back as explicit statuses.
package main

import (
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// tenantSpec is one workload: a named analytic oracle with artificial
// latency standing in for the real simulation.
type tenantSpec struct {
	name string
	f    func(x []float64) []float64
}

func main() {
	rng := repro.NewRand(42)
	specs := []tenantSpec{
		{"potential", func(x []float64) []float64 {
			r := 0.6 + 0.5*(x[0]+1)
			ir6 := math.Pow(r, -6)
			return []float64{ir6*ir6 - ir6 + 0.1*x[1]}
		}},
		{"tissue", func(x []float64) []float64 {
			return []float64{math.Exp(-2*math.Abs(x[0])) * math.Cos(3*x[1])}
		}},
		{"epi", func(x []float64) []float64 {
			r0 := 1 + 1.5*(x[0]+1)
			return []float64{math.Tanh(r0-1) * (0.5 + 0.4*x[1])}
		}},
	}

	fmt.Println("Phase 1: pretrain one sharded backend per workload")
	fl := repro.NewFleet(repro.FleetConfig{
		Coalescer:   repro.CoalescerConfig{MaxBatch: 32},
		MaxInFlight: 256,
	})
	defer fl.Close()

	backends := make(map[string]*repro.ShardedWrapper)
	for _, spec := range specs {
		f := spec.f
		oracle := repro.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
			time.Sleep(200 * time.Microsecond) // the "simulation" cost
			return f(x), nil
		}}
		factory := repro.NewNNSurrogateFactory(2, 1, []int{32}, 0.1, rng, func(s *repro.NNSurrogate) {
			s.Epochs = 120
			s.MCPasses = 8
			s.MaxBatch = 32
		})
		// The training design doubles as the routing distribution: the kd
		// cut points are auto-tuned to its quantiles, so each shard owns
		// an equal-mass slice of where queries actually land.
		design := repro.NewMatrix(160, 2)
		for i := 0; i < design.Rows; i++ {
			design.Set(i, 0, rng.Range(-1, 1))
			design.Set(i, 1, rng.Range(-1, 1))
		}
		cuts := repro.KDCutsFromSamples(design, 0, 2)
		w := repro.NewShardedWrapper(oracle, factory, repro.ShardedConfig{
			Router:          repro.KDRouter{Dim: 0, Cuts: cuts},
			MinTrainSamples: 40,
			RetrainEvery:    400, // periodic background refits under load…
			DriftFactor:     2.5, // …plus adaptive ones when the oracle moves
			UQThreshold:     0.5,
			OracleWorkers:   8,
			// The tissue tenant serves its int8 quantized programs:
			// every published generation quantizes on Train, and lookups
			// whose UQ decision sits inside the quantization error band
			// re-run on the retained float program (counted below). Its
			// bounded response keeps the error band narrow, so the
			// fallback rate stays low and most queries get the int8 path;
			// the wide-range potential oracle would sit in the band
			// constantly and is better left on float.
			Quantized: spec.name == "tissue",
		})
		if err := w.Pretrain(design); err != nil {
			panic(err)
		}
		if err := fl.Register(spec.name, w); err != nil {
			panic(err)
		}
		backends[spec.name] = w
		fmt.Printf("  %-10s shards(kd cuts %v) sizes %v\n", spec.name, cuts, w.ShardSizes())
	}

	fmt.Println("\nPhase 2: concurrent load, all tenants through one dispatch plane")
	const (
		clientsPerTenant = 4
		queriesPerClient = 2000
	)
	var wg sync.WaitGroup
	var served, shed atomic.Int64
	t0 := time.Now()
	for ti, spec := range specs {
		for c := 0; c < clientsPerTenant; c++ {
			wg.Add(1)
			go func(name string, seed uint64) {
				defer wg.Done()
				crng := repro.NewRand(seed)
				x := make([]float64, 2)
				y := make([]float64, 1)
				std := make([]float64, 1)
				for i := 0; i < queriesPerClient; i++ {
					x[0] = crng.Range(-1, 1)
					x[1] = crng.Range(-1, 1)
					_, err := fl.QueryInto(name, x, y, std) // zero-alloc steady state
					switch err {
					case nil:
						served.Add(1)
					case repro.ErrTenantOverloaded:
						shed.Add(1) // bounded admission: back off, retry later
					default:
						panic(err)
					}
				}
			}(spec.name, uint64(1000*ti+c))
		}
	}
	wg.Wait()
	elapsed := time.Since(t0)
	fmt.Printf("  %d queries served (+%d shed by admission) in %v — %.0f q/s total\n",
		served.Load(), shed.Load(), elapsed.Round(time.Millisecond),
		float64(served.Load())/elapsed.Seconds())
	fmt.Printf("  %-10s %12s %8s %12s %12s %10s %10s\n", "tenant", "queries/s", "batch", "p50", "p99", "staleness", "quant")
	for _, name := range fl.Tenants() {
		st, _ := fl.TenantStats(name)
		quant := "float"
		if st.QuantQueries > 0 {
			// int8-served lookups and the share re-run on the float
			// program because quantization error could have flipped the
			// UQ accept/reject decision.
			quant = fmt.Sprintf("%.1f%% fb", 100*float64(st.QuantFallbacks)/float64(st.QuantQueries))
		}
		fmt.Printf("  %-10s %12.0f %8.1f %12v %12v %10d %10s\n",
			name, st.QPS, st.MeanBatch, st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond), st.Staleness, quant)
	}

	fmt.Println("\nPhase 3: the epi oracle drifts — ingested residuals trip an adaptive refit")
	// A new data feed arrives whose responses the published epi model no
	// longer explains (the oracle moved): Ingest tracks each sample's
	// residual against the published model, and once the EWMA exceeds
	// DriftFactor × the model's own training residual, the shard is
	// marked drifted and RefitStale retrains it — no RetrainEvery wait.
	epi := backends["epi"]
	shifted := repro.NewMatrix(120, 2)
	shiftedY := repro.NewMatrix(120, 1)
	for i := 0; i < shifted.Rows; i++ {
		x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		shifted.Set(i, 0, x[0])
		shifted.Set(i, 1, x[1])
		shiftedY.Set(i, 0, specs[2].f(x)[0]+1.5) // the drifted regime
	}
	if err := epi.Ingest(shifted, shiftedY); err != nil {
		panic(err)
	}
	for si, st := range epi.Status() {
		fmt.Printf("  epi shard %d: drifted=%v ratio=%.1f stale=%d gen=%d\n", si, st.Drifted, st.DriftRatio, st.Stale, st.Generation)
	}
	fmt.Printf("  RefitStale spawned %d refits", epi.RefitStale())
	if err := epi.Wait(); err != nil {
		panic(err)
	}
	drained := true
	for _, st := range epi.Status() {
		drained = drained && !st.Drifted
	}
	fmt.Printf("; after Wait all drift cleared: %v\n", drained)

	fmt.Println("\nPhase 4: deregister 'tissue' mid-traffic; neighbours keep serving")
	var tissueErrs, potServed atomic.Int64
	wg.Add(2)
	go func() {
		defer wg.Done()
		crng := repro.NewRand(777)
		x := make([]float64, 2)
		y := make([]float64, 1)
		std := make([]float64, 1)
		for i := 0; i < 2000; i++ {
			x[0], x[1] = crng.Range(-1, 1), crng.Range(-1, 1)
			if _, err := fl.QueryInto("tissue", x, y, std); err != nil {
				tissueErrs.Add(1) // ErrUnknownTenant after the drain
			}
		}
	}()
	go func() {
		defer wg.Done()
		crng := repro.NewRand(778)
		x := make([]float64, 2)
		y := make([]float64, 1)
		std := make([]float64, 1)
		for i := 0; i < 2000; i++ {
			x[0], x[1] = crng.Range(-1, 1), crng.Range(-1, 1)
			if _, err := fl.QueryInto("potential", x, y, std); err != nil {
				panic(err) // the neighbour must be untouched
			}
			potServed.Add(1)
		}
	}()
	time.Sleep(2 * time.Millisecond)
	if err := fl.Deregister("tissue"); err != nil {
		panic(err)
	}
	wg.Wait()
	fmt.Printf("  tissue: %d queries bounced after graceful drain; potential served all %d\n",
		tissueErrs.Load(), potServed.Load())
	fmt.Printf("  remaining tenants: %v\n", fl.Tenants())

	fmt.Println("\nPhase 5: the same fleet, served over the wire")
	// One dispatch plane, now network-visible: the wire server decodes
	// frames into pooled buffers and feeds the same per-tenant
	// coalescers, so frames from different TCP connections gather into
	// the same micro-batches the in-process callers used.
	srv := repro.NewWireServer(repro.WireServerConfig{Fleet: fl})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	// A fresh, stable tenant for the wire load: high UQThreshold keeps
	// it on the surrogate path with no background refits, so the numbers
	// below measure the wire and the coalescer, not training bursts
	// stealing the core. (The phase-1 tenants stay registered — one
	// /statsz scrape reports them all — but potential and epi are
	// mid-churn by design and their refits would dominate the histogram.)
	krng := repro.NewRand(99)
	kOracle := repro.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{math.Exp(-x[0]*x[0]) * math.Sin(2*x[1])}, nil
	}}
	kFac := repro.NewNNSurrogateFactory(2, 1, []int{24}, 0.1, krng, func(s *repro.NNSurrogate) {
		s.Epochs = 80
		s.MCPasses = 6
	})
	kw := repro.NewShardedWrapper(kOracle, kFac, repro.ShardedConfig{
		Router:          repro.HashRouter{Shards: 1},
		MinTrainSamples: 40,
		UQThreshold:     10,
	})
	kdesign := repro.NewMatrix(160, 2)
	for i := 0; i < kdesign.Rows; i++ {
		kdesign.Set(i, 0, rng.Range(-1, 1))
		kdesign.Set(i, 1, rng.Range(-1, 1))
	}
	if err := kw.Pretrain(kdesign); err != nil {
		panic(err)
	}
	if err := fl.Register("kernel", kw); err != nil {
		panic(err)
	}

	cl, err := repro.DialWire(ln.Addr().String(), repro.WireClientConfig{})
	if err != nil {
		panic(err)
	}
	defer cl.Close()
	res, err := cl.Query("potential", []float64{0.25, -0.5}, time.Time{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  remote query: potential(0.25,-0.5) = %.4f (src=%v)\n", res.Y[0], res.Src)
	// A request whose deadline already passed is shed at admission with
	// an explicit status — never silently dropped.
	if _, err := cl.Query("potential", []float64{0, 0}, time.Now().Add(-time.Millisecond)); errors.Is(err, repro.ErrWireExpired) {
		fmt.Println("  expired deadline: shed with ErrWireExpired before reaching the backend")
	}

	// Quiesce the earlier phases' background refits before measuring:
	// on one core a training burst and a latency histogram cannot share
	// the clock honestly.
	for _, w := range backends {
		if err := w.Wait(); err != nil {
			panic(err)
		}
	}

	rep, err := repro.RunWireLoad(repro.WireLoadConfig{
		Addr:    ln.Addr().String(),
		Tenants: []string{"kernel"},
		In:      2,
		// Open loop: requests are scheduled at this rate regardless of
		// completions, so a slow server shows up as queueing latency,
		// and slots the bounded in-flight window cannot carry are
		// counted as overflow — never silently skipped.
		QPS:      20000,
		Duration: time.Second,
		Conns:    4,
		Workers:  32,
	})
	if err != nil {
		panic(err)
	}
	fmt.Print("  ", rep.String())
	ws := srv.Stats()
	fmt.Printf("  wire: %d conns, %d requests over %d flushes (%.1f responses/syscall)\n",
		ws.Conns, ws.Requests, ws.Flushes, float64(ws.Responses)/float64(max64(ws.Flushes, 1)))

	fmt.Println("\nPhase 6: resilient client — surviving a server restart")
	// DialWireResilient wraps the same wire protocol in a small connection
	// pool with automatic reconnect, retry and per-tenant circuit breaking.
	// Here the server is killed and replaced under live use: the in-between
	// failures come back as typed errors (never hangs, never silent), and
	// the pool redials on its own once the replacement is up.
	srv2 := repro.NewWireServer(repro.WireServerConfig{Fleet: fl})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv2.Serve(ln2)
	wireAddr := ln2.Addr().String()
	rcl, err := repro.DialWireResilient(wireAddr, repro.WireResilientConfig{
		Conns:            2,
		ReconnectBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer rcl.Close()
	if _, err := rcl.Query("kernel", []float64{0.1, 0.2}, time.Time{}); err != nil {
		panic(err)
	}
	srv2.Close() // hard restart: every pooled connection dies mid-stream
	typed := 0
	for i := 0; i < 5; i++ {
		if _, err := rcl.Query("kernel", []float64{0.1, 0.2}, time.Now().Add(50*time.Millisecond)); err != nil &&
			(errors.Is(err, repro.ErrWireConnLost) || errors.Is(err, repro.ErrWireNoConn)) {
			typed++
		}
	}
	srv3 := repro.NewWireServer(repro.WireServerConfig{Fleet: fl})
	ln3, err := net.Listen("tcp", wireAddr)
	if err != nil {
		panic(err)
	}
	go srv3.Serve(ln3)
	defer srv3.Close()
	var back time.Duration
	for t0 := time.Now(); ; back = time.Since(t0) {
		if _, err := rcl.Query("kernel", []float64{0.1, 0.2}, time.Now().Add(100*time.Millisecond)); err == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	rst := rcl.Stats()
	fmt.Printf("  outage: %d/5 queries failed with typed errors (no hangs, no silent drops)\n", typed)
	fmt.Printf("  recovered %v after restart: %d/%d connections live, %d reconnects, %d retries\n",
		back.Round(time.Millisecond), rst.Live, rst.Conns, rst.Reconnects, rst.Retries)

	fmt.Println("\nPhase 7: dispatch tier — two workers, consistent-hash placement, warm failover")
	// The tiers above scale one process. The dispatch tier scales out:
	// worker processes each run their own fleet + artifact registry, and a
	// router in front places tenants across them by consistent hashing,
	// splicing query frames through without ever decoding a row. The
	// router mirrors every generation the workers publish; when a worker
	// dies mid-traffic, its tenants rehash onto survivors and warm-start
	// from the mirrored artifacts — zero retraining, proven here by the
	// survivor's oracle-run counter staying flat across the failover.
	dir, err := os.MkdirTemp("", "fleet-routed-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	oracleFns := map[string]func([]float64) []float64{}
	for _, spec := range specs {
		oracleFns[spec.name] = spec.f
	}
	wa := startRoutedWorker(filepath.Join(dir, "a"), 1, oracleFns)
	wb := startRoutedWorker(filepath.Join(dir, "b"), 2, oracleFns)
	mirror, err := repro.OpenRegistry(repro.RegistryConfig{Dir: filepath.Join(dir, "mirror")})
	if err != nil {
		panic(err)
	}
	defer mirror.Close()
	names := []string{"potential", "tissue", "epi"}
	rt, err := repro.NewWireRouter(repro.WireRouterConfig{
		Workers:        []string{wa.addr, wb.addr},
		Registry:       mirror,
		Tenants:        names,
		MirrorInterval: 20 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	lnr, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go rt.Serve(lnr)
	rrc, err := repro.DialWireResilient(lnr.Addr().String(), repro.WireResilientConfig{Conns: 2})
	if err != nil {
		panic(err)
	}
	defer rrc.Close()

	// Wait until every tenant serves through the router and the mirror
	// holds each one's latest generation (the failover warm-start source).
	waitRouted := func(name string) time.Duration {
		t0 := time.Now()
		for {
			if _, err := rrc.Query(name, []float64{0.2, -0.1}, time.Now().Add(time.Second)); err == nil {
				return time.Since(t0)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for _, name := range names {
		waitRouted(name)
	}
	for _, name := range names {
		for {
			if g, ok := mirror.CurrentGeneration(repro.RegistryShardKey(name, 0)); ok && g >= 1 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	pl := rt.Placements()
	fmt.Printf("  placed: potential→%s  tissue→%s  epi→%s\n", pl["potential"], pl["tissue"], pl["epi"])

	victim, survivor := wa, wb
	if pl["potential"] == wb.addr {
		victim, survivor = wb, wa
	}
	survivorRuns := survivor.runs.Load()
	fmt.Printf("  killing %s (owner of 'potential') under live traffic…\n", victim.addr)
	victim.close()
	reover := waitRouted("potential")
	rts := rt.Stats()
	fmt.Printf("  failover: 'potential' back in %v at %s (%d rehashes, %d warm starts)\n",
		reover.Round(time.Millisecond), rt.Placements()["potential"], rts.Rehashes, rts.WarmStarts)
	fmt.Printf("  survivor oracle runs during failover: %d — the moved tenants warm-started "+
		"from mirrored artifacts, zero retraining\n", survivor.runs.Load()-survivorRuns)
	if st, err := survivor.fl.TenantStats("potential"); err == nil {
		fmt.Printf("  survivor placement: source=%s generation=%d shards-warmed=%d\n",
			st.PlacementSource, st.PlacementGeneration, st.PlacementWarmShards)
	}
	survivor.close()
}

// routedWorker is one phase-7 worker "process" in miniature: its own
// fleet, artifact registry and wire server with the router's placement
// hooks installed, plus an oracle-run counter to prove failovers are
// warm.
type routedWorker struct {
	addr string
	fl   *repro.Fleet
	reg  *repro.Registry
	srv  *repro.WireServer
	runs atomic.Int64
}

func startRoutedWorker(dir string, seed uint64, oracles map[string]func([]float64) []float64) *routedWorker {
	reg, err := repro.OpenRegistry(repro.RegistryConfig{Dir: dir})
	if err != nil {
		panic(err)
	}
	w := &routedWorker{fl: repro.NewFleet(repro.FleetConfig{}), reg: reg}
	hooks := &repro.RouterWorkerHooks{
		Fleet:    w.fl,
		Registry: reg,
		Seed:     seed,
		Make: func(tenant string) (*repro.ShardedWrapper, error) {
			f, ok := oracles[tenant]
			if !ok {
				return nil, fmt.Errorf("no oracle for tenant %q", tenant)
			}
			oracle := repro.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
				w.runs.Add(1)
				return f(x), nil
			}}
			fac := repro.NewNNSurrogateFactory(2, 1, []int{16}, 0.1, repro.NewRand(seed), func(s *repro.NNSurrogate) {
				s.Epochs = 60
				s.MCPasses = 4
			})
			return repro.NewShardedWrapper(oracle, fac, repro.ShardedConfig{
				Router:          repro.HashRouter{Shards: 1},
				MinTrainSamples: 20,
				// Trust the surrogate outright: this phase demos placement
				// and warm failover, not UQ gating, and the potential
				// oracle's huge output range makes MC-dropout std spiky.
				UQThreshold: 1e9,
			}), nil
		},
		Pretrain: func(tenant string, sw *repro.ShardedWrapper) error {
			rng := repro.NewRand(seed ^ 0x7e57)
			design := repro.NewMatrix(80, 2)
			for i := 0; i < design.Rows; i++ {
				design.Set(i, 0, rng.Range(-1, 1))
				design.Set(i, 1, rng.Range(-1, 1))
			}
			return sw.Pretrain(design)
		},
	}
	w.srv = repro.NewWireServer(repro.WireServerConfig{Fleet: w.fl, Artifacts: hooks, Install: hooks})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	w.addr = ln.Addr().String()
	go w.srv.Serve(ln)
	return w
}

func (w *routedWorker) close() {
	w.srv.Close()
	w.fl.Close()
	w.reg.Close()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
