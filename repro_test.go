package repro

import (
	"math"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end: the
// README-documented flow must keep working.
func TestFacadeQuickstart(t *testing.T) {
	rng := NewRand(1)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0] + 2*x[1]}, nil
	}}
	sur := NewNNSurrogate(2, 1, []int{16}, 0.1, rng)
	sur.Epochs = 120
	w := NewWrapper(oracle, sur, WrapperConfig{MinTrainSamples: 60, UQThreshold: 0.25})
	for i := 0; i < 60; i++ {
		if _, _, _, err := w.Query([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	hits := 0
	for i := 0; i < 40; i++ {
		_, src, _, err := w.Query([]float64{rng.Float64(), rng.Float64()})
		if err != nil {
			t.Fatal(err)
		}
		if src == FromSurrogate {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("facade wrapper never served from surrogate")
	}
	led := w.Ledger()
	if led.NLookup != hits {
		t.Fatal("facade ledger inconsistent")
	}
}

func TestFacadeEffectiveSpeedup(t *testing.T) {
	s := EffectiveSpeedup(100, 100, 1, 0.01, 1000, 10)
	want := 100.0 * 1010 / (0.01*1000 + 101*10)
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("facade speedup %g want %g", s, want)
	}
}

func TestFacadeTaxonomy(t *testing.T) {
	if MLaroundHPC.String() != "MLaroundHPC" {
		t.Fatal("taxonomy re-export broken")
	}
	if HPCrunsML.Category().String() != "HPCforML" {
		t.Fatal("category re-export broken")
	}
}
