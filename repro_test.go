package repro

import (
	"math"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end: the
// README-documented flow must keep working.
func TestFacadeQuickstart(t *testing.T) {
	rng := NewRand(1)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0] + 2*x[1]}, nil
	}}
	sur := NewNNSurrogate(2, 1, []int{16}, 0.1, rng)
	sur.Epochs = 120
	w := NewWrapper(oracle, sur, WrapperConfig{MinTrainSamples: 60, UQThreshold: 0.25})
	for i := 0; i < 60; i++ {
		if _, _, _, err := w.Query([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	hits := 0
	for i := 0; i < 40; i++ {
		_, src, _, err := w.Query([]float64{rng.Float64(), rng.Float64()})
		if err != nil {
			t.Fatal(err)
		}
		if src == FromSurrogate {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("facade wrapper never served from surrogate")
	}
	led := w.Ledger()
	if led.NLookup != hits {
		t.Fatal("facade ledger inconsistent")
	}
}

// TestFacadeShardedServing exercises the stall-free serving API end to
// end through the facade: factory, pretrain, batch serving, Wait.
func TestFacadeShardedServing(t *testing.T) {
	rng := NewRand(2)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0] - x[1]}, nil
	}}
	fac := NewNNSurrogateFactory(2, 1, []int{16}, 0.1, rng, func(s *NNSurrogate) {
		s.Epochs = 100
		s.MCPasses = 8
	})
	w := NewShardedWrapper(oracle, fac, ShardedConfig{
		Shards: 2, UQThreshold: 0.3, MinTrainSamples: 10, RetrainEvery: 30, OracleWorkers: 2,
	})
	design := NewMatrix(80, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	batch := NewMatrix(32, 2)
	for i := 0; i < batch.Rows; i++ {
		batch.Set(i, 0, rng.Range(-1, 1))
		batch.Set(i, 1, rng.Range(-1, 1))
	}
	res, err := w.QueryBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("row %d: %v", i, r.Err)
		}
		if r.Src == FromSurrogate {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("sharded facade never served from a surrogate")
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeEffectiveSpeedup(t *testing.T) {
	s := EffectiveSpeedup(100, 100, 1, 0.01, 1000, 10)
	want := 100.0 * 1010 / (0.01*1000 + 101*10)
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("facade speedup %g want %g", s, want)
	}
}

func TestFacadeTaxonomy(t *testing.T) {
	if MLaroundHPC.String() != "MLaroundHPC" {
		t.Fatal("taxonomy re-export broken")
	}
	if HPCrunsML.Category().String() != "HPCforML" {
		t.Fatal("category re-export broken")
	}
}
