package repro

import (
	"testing"

	"repro/internal/experiments"
)

// The benchmarks below regenerate every experiment of the reproduction
// (DESIGN.md §4, EXPERIMENTS.md) at Small scale so `go test -bench=.`
// terminates quickly; `cmd/learnhpc -scale=full <exp>` runs the documented
// reproduction scale. Each bench reports the experiment's headline number
// as a custom metric.

func BenchmarkE1EffectiveSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E1EffectiveSpeedup(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.LimitInfinite, "max-speedup")
	}
}

func BenchmarkE2NanoSurrogate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E2NanoSurrogate(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SpeedupFactor, "lookup-speedup")
		b.ReportMetric(r.R2[2], "peak-R2")
	}
}

func BenchmarkE3Autotune(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E3Autotune(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DtEfficiency, "dt-efficiency")
	}
}

func BenchmarkE4DEFSI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E4DEFSI(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		// County RMSE ratio baseline/DEFSI (>1 means DEFSI wins).
		b.ReportMetric(r.County[1]/r.County[0], "county-win-ratio")
	}
}

func BenchmarkE5NNPotential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E5NNPotential(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SpeedupFactor, "oracle/nn-speedup")
	}
}

func BenchmarkE6ActiveLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E6ActiveLearning(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if r.ALSamples > 0 && r.RandomSamples > 0 {
			b.ReportMetric(float64(r.ALSamples)/float64(r.RandomSamples), "al-sample-frac")
		}
	}
}

func BenchmarkE7DropoutUQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E7DropoutUQ(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Coverage[1], "coverage-p0.1")
	}
}

func BenchmarkE8SolventSurrogate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E8SolventSurrogate(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup, "kernel-speedup")
		b.ReportMetric(r.DensityL1Error, "profile-err")
	}
}

func BenchmarkE9TissueShortCircuit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E9TissueShortCircuit(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup, "transport-speedup")
		b.ReportMetric(r.RelativeL2Err, "rel-l2-err")
	}
}

func BenchmarkE10ParallelModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E10ParallelModels(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		// Allreduce (index 2) final loss at P=8.
		b.ReportMetric(r.FinalLoss[2][3], "allreduce-p8-loss")
	}
}

func BenchmarkE10Scheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E10Scheduler(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		// Imbalance ratio static/dynamic (>1 means dynamic balances better).
		if r.Imbalance[1] > 0 {
			b.ReportMetric(r.Imbalance[0]/r.Imbalance[1], "static/dynamic-imbalance")
		}
	}
}
