package repro

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// The benchmarks in this file pin the NN hot path: steady-state training
// throughput, layer-level allocation behaviour, and batched surrogate
// serving. scripts/bench.sh snapshots them into BENCH_<n>.json so PRs
// have a perf trajectory.

// trainBenchData builds a fixed synthetic regression corpus.
func trainBenchData(n, in, out int) (*tensor.Matrix, *tensor.Matrix) {
	rng := xrand.New(0xbe7c)
	x := tensor.NewMatrix(n, in)
	y := tensor.NewMatrix(n, out)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < out; j++ {
			s := 0.0
			for k := 0; k < in; k++ {
				s += x.At(i, k) * float64(k%3)
			}
			y.Set(i, j, s/float64(in))
		}
	}
	return x, y
}

// BenchmarkTrainEpoch measures one full Fit epoch (shuffle, minibatch
// assembly, forward, loss, backward, optimizer step) over 512 samples of
// an 8-64-64-4 MLP with dropout, the shape of the paper's surrogates.
func BenchmarkTrainEpoch(b *testing.B) {
	x, y := trainBenchData(512, 8, 4)
	net := nn.NewMLP(xrand.New(1), nn.Tanh, 0.1, 8, 64, 64, 4)
	opt := nn.NewAdam(1e-3)
	cfg := nn.TrainConfig{Epochs: 1, BatchSize: 64, Optimizer: opt, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Fit(x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseForwardBackward measures one steady-state training step
// of a single dense layer; allocs/op must read 0.
func BenchmarkDenseForwardBackward(b *testing.B) {
	rng := xrand.New(3)
	d := nn.NewDense(16, 16, nn.Tanh, rng)
	x := tensor.NewMatrix(8, 16)
	g := tensor.NewMatrix(8, 16)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
		g.Data[i] = rng.Range(-1, 1)
	}
	d.Forward(x, true, nil)
	d.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.GW.Zero()
		d.GB.Zero()
		d.Forward(x, true, nil)
		d.Backward(g)
	}
}

// benchWrapper builds a pretrained UQ-gated wrapper over a cheap
// analytic oracle for the serving benchmarks.
func benchWrapper(b *testing.B) *core.Wrapper {
	b.Helper()
	rng := xrand.New(0x5e4e)
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
	}}
	sur := core.NewNNSurrogate(2, 1, []int{24}, 0.1, rng)
	sur.Epochs = 100
	sur.MCPasses = 10
	w := core.NewWrapper(oracle, sur, core.WrapperConfig{MinTrainSamples: 10, UQThreshold: 10})
	design := tensor.NewMatrix(100, 2)
	for i := 0; i < 100; i++ {
		design.Set(i, 0, rng.Range(-2, 2))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		b.Fatal(err)
	}
	return w
}

func benchBatch(n int) *tensor.Matrix {
	rng := xrand.New(0xba7c4)
	batch := tensor.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		batch.Set(i, 0, rng.Range(-2, 2))
		batch.Set(i, 1, rng.Range(-1, 1))
	}
	return batch
}

// BenchmarkQueryBatch serves 64 UQ-gated queries per op through the
// steady-state batch serving loop: the compiled batch program answers the
// whole batch in fused chunks and QueryBatchInto reuses the caller's
// result slice, so a warmed iteration performs zero heap allocations
// (down from 8 allocs/op through the uncompiled path in BENCH_3).
func BenchmarkQueryBatch(b *testing.B) {
	w := benchWrapper(b)
	batch := benchBatch(64)
	res := make([]core.BatchResult, batch.Rows)
	if err := w.QueryBatchInto(batch, res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.QueryBatchInto(batch, res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkQueryLoop serves the same 64 queries one Query at a time —
// the pre-batching serving pattern, kept as the comparison baseline.
func BenchmarkQueryLoop(b *testing.B) {
	w := benchWrapper(b)
	batch := benchBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < batch.Rows; r++ {
			if _, _, _, err := w.Query(batch.Row(r)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkQueryBatchParallel drives the batch path from parallel
// goroutines, exercising the wrapper's read-lock serving contract.
func BenchmarkQueryBatchParallel(b *testing.B) {
	w := benchWrapper(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		batch := benchBatch(64)
		for pb.Next() {
			if _, err := w.QueryBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchShardedWrapper builds a pretrained sharded wrapper over the same
// cheap analytic oracle as benchWrapper.
func benchShardedWrapper(b *testing.B) *core.ShardedWrapper {
	b.Helper()
	rng := xrand.New(0x5e4e)
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
	}}
	factory := core.NewNNSurrogateFactory(2, 1, []int{24}, 0.1, rng, func(s *core.NNSurrogate) {
		s.Epochs = 100
		s.MCPasses = 10
	})
	w := core.NewShardedWrapper(oracle, factory, core.ShardedConfig{
		Shards: 2, MinTrainSamples: 10, UQThreshold: 10, OracleWorkers: 4,
	})
	design := tensor.NewMatrix(128, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-2, 2))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		b.Fatal(err)
	}
	return w
}

// reportLatencyPercentiles attaches p50/p99 per-query latency metrics.
func reportLatencyPercentiles(b *testing.B, lats []time.Duration) {
	b.Helper()
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		return float64(lats[int(p*float64(len(lats)-1))].Nanoseconds())
	}
	b.ReportMetric(pct(0.50), "p50-ns")
	b.ReportMetric(pct(0.99), "p99-ns")
}

// BenchmarkCompiledForward pins the fused inference kernel against the
// interpreted Predictor path on the paper's 6-30-48-3 autotuning net:
// the compiled single-query forward must run at 0 allocs/op and at or
// below the Predictor's ns/op.
func BenchmarkCompiledForward(b *testing.B) {
	rng := xrand.New(0xf00d)
	net := nn.NewMLP(xrand.New(1), nn.Tanh, 0.1, 6, 30, 48, 3)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.Range(-1, 1)
	}

	b.Run("compiled", func(b *testing.B) {
		c := net.Compile()
		dst := make([]float64, 3)
		c.Predict(x, dst)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Predict(x, dst)
		}
	})
	b.Run("predictor", func(b *testing.B) {
		p := net.NewPredictor()
		in := tensor.NewMatrix(1, 6)
		copy(in.Data, x)
		p.Forward(in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Forward(in)
		}
	})
}

// BenchmarkQuantizedForward pins the int8 quantized single-query forward
// on the same 6-30-48-3 autotuning net as BenchmarkCompiledForward. The
// quantized program packs each dense panel into 7-bit SWAR words and runs
// the whole hidden stack in integer arithmetic with a fused
// dequant+activation+requant epilogue, so it must run at 0 allocs/op and
// ≥1.5× faster than the float compiled path (gated by bench_diff in CI).
func BenchmarkQuantizedForward(b *testing.B) {
	rng := xrand.New(0xf00d)
	net := nn.NewMLP(xrand.New(1), nn.Tanh, 0.1, 6, 30, 48, 3)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.Range(-1, 1)
	}
	calib := tensor.NewMatrix(32, 6)
	for i := range calib.Data {
		calib.Data[i] = rng.Range(-1, 1)
	}
	q := net.Compile().Quantize(calib)
	if q == nil {
		b.Fatal("net did not quantize")
	}
	dst := make([]float64, 3)
	if _, ok := q.Predict(x, dst); !ok {
		b.Fatal("benchmark input clipped the calibration envelope")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Predict(x, dst)
	}
}

// BenchmarkQuantizedQueryBatch serves the same 64-query batch as
// BenchmarkQueryBatch through a Quantized wrapper: the int8 batch program
// answers every row, the UQ-vs-quant-error guardrail re-checks each
// decision, and a warmed iteration performs zero heap allocations.
func BenchmarkQuantizedQueryBatch(b *testing.B) {
	rng := xrand.New(0x5e4e)
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
	}}
	sur := core.NewNNSurrogate(2, 1, []int{24}, 0.1, rng)
	sur.Epochs = 100
	sur.MCPasses = 10
	w := core.NewWrapper(oracle, sur, core.WrapperConfig{
		MinTrainSamples: 10, UQThreshold: 10, Quantized: true,
	})
	design := tensor.NewMatrix(100, 2)
	for i := 0; i < 100; i++ {
		design.Set(i, 0, rng.Range(-2, 2))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		b.Fatal(err)
	}
	batch := benchBatch(64)
	res := make([]core.BatchResult, batch.Rows)
	if err := w.QueryBatchInto(batch, res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.QueryBatchInto(batch, res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "queries/s")
	q, f := w.QuantStats()
	b.ReportMetric(float64(f)/float64(q), "fallback-rate")
}

// BenchmarkCompiledBatch pins the fused batch program against the
// interpreted Predictor batch pass on the paper's 6-30-48-3 autotuning
// net at a 64-row batch: the compiled side must run at 0 allocs/op and at
// or below the Predictor's ns/op.
func BenchmarkCompiledBatch(b *testing.B) {
	rng := xrand.New(0xf00e)
	net := nn.NewMLP(xrand.New(1), nn.Tanh, 0.1, 6, 30, 48, 3)
	xs := tensor.NewMatrix(64, 6)
	for i := range xs.Data {
		xs.Data[i] = rng.Range(-1, 1)
	}

	b.Run("compiled", func(b *testing.B) {
		c := net.CompileBatch(64)
		dst := tensor.NewMatrix(64, 3)
		c.PredictBatch(xs, dst)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.PredictBatch(xs, dst)
		}
	})
	b.Run("predictor", func(b *testing.B) {
		p := net.NewPredictor()
		p.Forward(xs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Forward(xs)
		}
	})
}

// BenchmarkDeepUQ pins batched MC-dropout UQ on a deep surrogate with
// THREE dropout layers (8-64-[drop]-64-[drop]-64-[drop]-1), where the
// PR-3 tail fusion does not apply and the per-pass path replays the
// whole suffix every pass (re-masking every weight panel each time). The
// batch is a realistic coalesced per-shard slice (8 rows), where that
// per-pass overhead is not hidden by matmul bulk. The pass-stacked
// compiled path runs all passes through one tall fused matmul per dense
// stage: 4 matmul sweeps total versus 1 + 3·passes for per-pass replay
// (the reported matmul-sweeps metric), at 0 allocs/op.
func BenchmarkDeepUQ(b *testing.B) {
	const passes = 30
	rng := xrand.New(0xf00f)
	net := nn.NewMLP(xrand.New(2), nn.Tanh, 0.15, 8, 64, 64, 64, 1)
	xs := tensor.NewMatrix(8, 8)
	for i := range xs.Data {
		xs.Data[i] = rng.Range(-1, 1)
	}

	b.Run("passstacked", func(b *testing.B) {
		c := net.CompileBatch(64)
		mean := tensor.NewMatrix(8, 1)
		std := tensor.NewMatrix(8, 1)
		c.PredictMCBatch(xs, passes, mean, std)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.PredictMCBatch(xs, passes, mean, std)
		}
		// 1 prefix dense + 3 suffix dense stages, passes shared.
		b.ReportMetric(4, "matmul-sweeps")
	})
	b.Run("perpass", func(b *testing.B) {
		p := net.NewPredictor()
		p.PredictMCBatch(xs, passes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.PredictMCBatch(xs, passes)
		}
		// 1 prefix dense + 3 fused dropout-dense sweeps per pass.
		b.ReportMetric(1+3*passes, "matmul-sweeps")
	})
}

// BenchmarkMatMulParallelSlope measures the matmul fan-out break-even
// slope the PR-2 heuristic assumes: at the default threshold of
// 8192·workers flops, fanned-out and inline execution should be within
// the same order — below it fan-out loses, above it wins. Each sub-bench
// sizes the product at exactly 8192·workers multiply-accumulates
// (rows = 32·workers, k = p = 16) and pins both paths; run on a
// multi-core box (ROADMAP open item) the inline/fanout ratio across the
// workers axis is the measured slope. GOMAXPROCS is attached as a metric
// so snapshots record the machine shape.
func BenchmarkMatMulParallelSlope(b *testing.B) {
	rng := xrand.New(0x510e)
	for _, workers := range []int{1, 2, 4, 8} {
		rows := 32 * workers
		a := tensor.NewMatrix(rows, 16)
		bm := tensor.NewMatrix(16, 16)
		dst := tensor.NewMatrix(rows, 16)
		for i := range a.Data {
			a.Data[i] = rng.Range(-1, 1)
		}
		for i := range bm.Data {
			bm.Data[i] = rng.Range(-1, 1)
		}
		run := func(b *testing.B, fanout bool) {
			oldW, oldT := tensor.ParallelWorkers, tensor.ParallelFlopThreshold
			defer func() {
				tensor.ParallelWorkers, tensor.ParallelFlopThreshold = oldW, oldT
			}()
			if fanout {
				tensor.ParallelWorkers, tensor.ParallelFlopThreshold = workers, 1
			} else {
				tensor.ParallelWorkers, tensor.ParallelFlopThreshold = 1, 1<<60
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(dst, a, bm)
			}
			b.StopTimer()
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		}
		b.Run(fmt.Sprintf("workers=%d/inline", workers), func(b *testing.B) { run(b, false) })
		b.Run(fmt.Sprintf("workers=%d/fanout", workers), func(b *testing.B) { run(b, true) })
	}
}

// BenchmarkCoalescedQPS measures per-query serving throughput for N
// concurrent clients issuing independent single-point queries, comparing
// the direct Query loop (every call pays the full per-pass dispatch
// cost) with the coalesced front-end (micro-batches amortize it). The
// acceptance bar is ≥2× queries/s at 64 clients.
func BenchmarkCoalescedQPS(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		w := benchWrapper(b)
		run := func(b *testing.B, query func(x []float64) error) {
			b.SetParallelism(1)
			var wg sync.WaitGroup
			per := b.N / clients
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := xrand.New(seed)
					x := make([]float64, 2)
					for i := 0; i < per; i++ {
						x[0] = rng.Range(-2, 2)
						x[1] = rng.Range(-1, 1)
						if err := query(x); err != nil {
							b.Error(err)
							return
						}
					}
				}(uint64(0xc11e + g))
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(per*clients)/b.Elapsed().Seconds(), "queries/s")
		}

		b.Run(fmt.Sprintf("direct/clients=%d", clients), func(b *testing.B) {
			run(b, func(x []float64) error {
				_, _, _, err := w.Query(x)
				return err
			})
		})
		b.Run(fmt.Sprintf("coalesced/clients=%d", clients), func(b *testing.B) {
			c := serve.NewCoalescer(w, serve.Config{MaxBatch: 64})
			defer c.Close()
			run(b, func(x []float64) error {
				_, err := c.Query(x)
				return err
			})
			b.ReportMetric(c.Stats().MeanBatch(), "batch-size")
		})
	}
}

// BenchmarkQueryDuringRetrain measures single-query serving latency
// (p50/p99) with and without a continuous background refit, on both
// serving architectures:
//
//   - sharded/idle, sharded/retrain: the double-buffered ShardedWrapper —
//     refits train a fresh model off to the side and publish by pointer
//     swap, so the retrain percentiles should stay within ~2× of idle.
//   - locked/retrain: the classic single-lock Wrapper with inline refits —
//     readers block behind the write lock for entire trainings, which is
//     the stall this PR removes (p99 ≈ full refit duration).
func BenchmarkQueryDuringRetrain(b *testing.B) {
	run := func(b *testing.B, w interface {
		Query(x []float64) ([]float64, core.Source, []float64, error)
	}, x []float64) {
		lats := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, _, _, err := w.Query(x); err != nil {
				b.Fatal(err)
			}
			lats = append(lats, time.Since(t0))
		}
		b.StopTimer()
		reportLatencyPercentiles(b, lats)
	}
	inGate := []float64{0.3, 0.2}

	b.Run("sharded/idle", func(b *testing.B) {
		w := benchShardedWrapper(b)
		run(b, w, inGate)
	})
	b.Run("sharded/retrain", func(b *testing.B) {
		w := benchShardedWrapper(b)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
					w.Refit() // every shard retrains in the background
					if err := w.Wait(); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
		run(b, w, inGate)
		close(stop)
		<-done
	})
	b.Run("locked/retrain", func(b *testing.B) {
		// Classic wrapper: refits hold the write lock for the whole
		// training run, so every reader blocks behind them. A background
		// goroutine keeps a refit in flight (Pretrain with an empty
		// design refits on the existing 128-sample set), which is the
		// pre-sharding behaviour of any wrapper with RetrainEvery set.
		wLocked := benchWrapper(b)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
					if err := wLocked.Pretrain(tensor.NewMatrix(0, 2)); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
		run(b, wLocked, inGate)
		close(stop)
		<-done
	})
}

// BenchmarkOracleFanout measures QueryBatch when every row must fall back
// to a latency-bound oracle (the external-HPC-job shape: ~200µs of
// non-CPU latency per run), comparing the sequential fallback with the
// bounded worker pool. The acceptance bar is ≥1.5× at 4 workers.
func BenchmarkOracleFanout(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		name := "workers=1"
		switch workers {
		case 4:
			name = "workers=4"
		case 8:
			name = "workers=8"
		}
		b.Run(name, func(b *testing.B) {
			rng := xrand.New(0x0a7e)
			oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
				time.Sleep(200 * time.Microsecond)
				return []float64{x[0] + x[1]}, nil
			}}
			// Untrained surrogate: every row misses and runs the oracle.
			sur := core.NewNNSurrogate(2, 1, []int{8}, 0.1, rng)
			w := core.NewWrapper(oracle, sur, core.WrapperConfig{
				MinTrainSamples: 1 << 30, UQThreshold: 0.5, OracleWorkers: workers,
			})
			batch := benchBatch(32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := w.QueryBatch(batch)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != 32 {
					b.Fatal("short batch")
				}
			}
			b.ReportMetric(float64(b.N*32)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkFleetQPS measures the multi-tenant dispatch plane: N tenants
// (each a pretrained UQ-gated wrapper) behind one fleet, M concurrent
// clients per tenant issuing independent single-point queries through
// the zero-alloc QueryInto path. The acceptance bar is that 4 tenants
// sharing the machinery sustain ≥80% of the single-tenant coalesced
// per-query throughput (allocs/op must read 0: tenant lookup, admission,
// pooled batch dispatch and latency recording are all allocation-free in
// steady state).
func BenchmarkFleetQPS(b *testing.B) {
	const clientsPerTenant = 16
	for _, tenants := range []int{1, 4} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			fl := fleet.New(fleet.Config{Coalescer: serve.Config{MaxBatch: 64}})
			defer fl.Close()
			names := make([]string, tenants)
			for t := 0; t < tenants; t++ {
				names[t] = fmt.Sprintf("t%d", t)
				if err := fl.Register(names[t], benchWrapper(b)); err != nil {
					b.Fatal(err)
				}
			}
			clients := clientsPerTenant * tenants
			per := b.N / clients
			if per == 0 {
				per = 1
			}
			b.SetParallelism(1)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for t := 0; t < tenants; t++ {
				for c := 0; c < clientsPerTenant; c++ {
					wg.Add(1)
					go func(name string, seed uint64) {
						defer wg.Done()
						rng := xrand.New(seed)
						x := make([]float64, 2)
						y := make([]float64, 1)
						std := make([]float64, 1)
						for i := 0; i < per; i++ {
							x[0] = rng.Range(-2, 2)
							x[1] = rng.Range(-1, 1)
							if _, err := fl.QueryInto(name, x, y, std); err != nil {
								b.Error(err)
								return
							}
						}
					}(names[t], uint64(0xf1e0+31*t+c))
				}
			}
			wg.Wait()
			b.StopTimer()
			qps := float64(per*clients) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/s")
			b.ReportMetric(qps/float64(tenants), "queries/s/tenant")
			if st, err := fl.TenantStats(names[0]); err == nil {
				b.ReportMetric(st.MeanBatch, "mean-batch")
			}
		})
	}
}
