package repro

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// BenchmarkRegistryColdStart measures what the crash-safe registry buys
// at process start: time from "nothing in memory" to "first surrogate
// prediction served".
//
//   - warm:    open the registry, mmap-decode the last durable
//     generation (network + compiled + quantized programs, scalers),
//     predict. No training, no compilation, no calibration.
//   - retrain: the before-picture — rebuild the same surrogate from the
//     retained design (train + compile + quantize), predict.
//
// The CI gate (bench_diff -require) holds warm to ≥10× faster than
// retrain; in practice it is orders of magnitude. This is the number
// that makes restart-after-crash a non-event for serving fleets.
func BenchmarkRegistryColdStart(b *testing.B) {
	const n, epochs = 60, 40
	design := tensor.NewMatrix(n, 2)
	labels := tensor.NewMatrix(n, 1)
	drng := xrand.New(17)
	for i := 0; i < n; i++ {
		x0, x1 := drng.Range(-1, 1), drng.Range(-1, 1)
		design.Set(i, 0, x0)
		design.Set(i, 1, x1)
		labels.Set(i, 0, math.Sin(3*x0)+0.5*x1)
	}
	newSur := func(seed uint64) *core.NNSurrogate {
		s := core.NewNNSurrogate(2, 1, []int{16}, 0.1, xrand.New(seed))
		s.Epochs = epochs
		s.MCPasses = 4
		s.Quantize = true
		return s
	}

	// One durable generation on disk, published once outside the loops.
	dir := filepath.Join(b.TempDir(), "reg")
	reg, err := registry.Open(registry.Config{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	seed := newSur(1)
	if err := seed.Train(design, labels); err != nil {
		b.Fatal(err)
	}
	if _, err := registry.PublishSurrogate(reg, registry.ShardKey("bench", 0), seed, 0.01); err != nil {
		b.Fatal(err)
	}
	reg.Close()

	probe := []float64{0.3, -0.4}
	var sink float64

	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := registry.Open(registry.Config{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			sur, _, _, err := registry.LoadSurrogate(r, registry.ShardKey("bench", 0), xrand.New(2))
			if err != nil {
				b.Fatal(err)
			}
			sink += sur.Predict(probe)[0]
			r.Close()
		}
	})

	b.Run("retrain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sur := newSur(uint64(3 + i))
			if err := sur.Train(design, labels); err != nil {
				b.Fatal(err)
			}
			sink += sur.Predict(probe)[0]
		}
	})

	if sink == math.Inf(1) {
		b.Fatal("impossible")
	}
}
